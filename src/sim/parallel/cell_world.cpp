#include "sim/parallel/cell_world.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "radio/frame.hpp"

namespace tcast::sim::parallel {

CellWorld::CellWorld(CellWorldConfig cfg)
    : cfg_(std::move(cfg)), kernel_(KernelConfig{cfg_.pool}) {
  TCAST_CHECK(cfg_.cells >= 1);
  TCAST_CHECK(cfg_.motes_per_cell >= 1);
  TCAST_CHECK(cfg_.cross_cell_delay >= 1);
  TCAST_CHECK(cfg_.duration >= 1);

  // Rank 0: the control plane. Ranks 1..cells: the cells, each with its own
  // RNG stream derived from the world seed.
  control_ = &kernel_.add_lp(cfg_.seed, 0);
  cells_.resize(cfg_.cells);
  for (std::size_t i = 0; i < cfg_.cells; ++i) {
    Cell& c = cells_[i];
    c.lp = &kernel_.add_lp(cfg_.seed, static_cast<std::uint64_t>(i) + 1);
    radio::ChannelConfig ccfg;
    ccfg.clean_loss = cfg_.clean_loss;
    c.channel = std::make_unique<radio::Channel>(c.lp->sim(), ccfg);
    c.motes.resize(cfg_.motes_per_cell);
    for (std::size_t m = 0; m < cfg_.motes_per_cell; ++m) {
      Mote& mote = c.motes[m];
      mote.radio = std::make_unique<radio::Radio>(
          *c.channel, static_cast<NodeId>(i * cfg_.motes_per_cell + m),
          addr(i, m));
      mote.radio->power_on();
      mote.mac = std::make_unique<mac::CsmaMac>(*mote.radio);
    }
  }

  // Ring topology: adjacent cells hear each other after cross_cell_delay.
  if (cfg_.cells > 1) {
    for (std::size_t i = 0; i < cfg_.cells; ++i) {
      const std::size_t j = (i + 1) % cfg_.cells;
      kernel_.connect(*cells_[i].lp, *cells_[j].lp, cfg_.cross_cell_delay);
      kernel_.connect(*cells_[j].lp, *cells_[i].lp, cfg_.cross_cell_delay);
      if (cfg_.cells == 2) break;  // one pair of links, not two
    }
  }
  for (Cell& c : cells_)
    kernel_.connect(*control_, *c.lp, cfg_.cross_cell_delay);

  // Mirror every local transmission of cell i into its ring neighbours as a
  // ghost transmission landing cross_cell_delay later. The tap fires inside
  // cell i's drain, so posting goes through i's LP-local outbox; ghost
  // injections are not re-tapped, so a frame travels exactly one hop.
  if (cfg_.cells > 1) {
    for (std::size_t i = 0; i < cfg_.cells; ++i) {
      const std::size_t left = (i + cfg_.cells - 1) % cfg_.cells;
      const std::size_t right = (i + 1) % cfg_.cells;
      cells_[i].channel->set_tx_tap(
          [this, i, left, right](const radio::Frame& f,
                                 const radio::Radio& sender, SimTime start,
                                 SimTime /*end*/) {
            const SimTime arrival = start + cfg_.cross_cell_delay;
            const double x = sender.pos_x();
            const double y = sender.pos_y();
            auto mirror = [&](std::size_t n) {
              radio::Channel* chan = cells_[n].channel.get();
              kernel_.post(*cells_[i].lp, *cells_[n].lp, arrival, 0,
                           [chan, f, x, y] {
                             chan->inject_transmission(f, x, y);
                           });
            };
            mirror(left);
            if (right != left) mirror(right);
          });
    }
  }

  // Jittered perpetual beacon traffic: every mote's first beacon lands
  // uniformly inside one period, later ones at period/2 + U[0, period).
  for (std::size_t i = 0; i < cfg_.cells; ++i) {
    RngStream& rng = cells_[i].lp->sim().rng();
    for (std::size_t m = 0; m < cfg_.motes_per_cell; ++m) {
      const auto jitter = static_cast<SimTime>(rng.uniform_below(
          static_cast<std::uint64_t>(cfg_.beacon_period)));
      arm_beacon(i, m, jitter);
    }
  }

  plan_faults();
}

CellWorld::~CellWorld() = default;

void CellWorld::arm_beacon(std::size_t cell, std::size_t mote, SimTime gap) {
  Mote& m = cells_[cell].motes[mote];
  TCAST_CHECK(!m.armed);
  m.armed = true;
  cells_[cell].lp->sim().schedule_after(
      gap, [this, cell, mote] { beacon_fire(cell, mote); });
}

void CellWorld::beacon_fire(std::size_t cell, std::size_t mote) {
  Cell& c = cells_[cell];
  Mote& m = c.motes[mote];
  m.armed = false;
  if (m.dark) return;  // crashed: the loop halts until the reboot re-arms it

  radio::Frame f;
  f.type = radio::FrameType::kData;
  f.src = addr(cell, mote);
  f.seq = m.seq++;
  f.data = {static_cast<std::uint8_t>(cell), static_cast<std::uint8_t>(mote)};
  m.mac->send(std::move(f));

  RngStream& rng = c.lp->sim().rng();
  const SimTime gap =
      cfg_.beacon_period / 2 +
      static_cast<SimTime>(rng.uniform_below(
          static_cast<std::uint64_t>(cfg_.beacon_period)));
  arm_beacon(cell, mote, gap);
}

void CellWorld::apply_fault(std::size_t cell, std::size_t mote, bool down) {
  Cell& c = cells_[cell];
  Mote& m = c.motes[mote];
  c.fault_log.push_back(AppliedFault{c.lp->sim().now(),
                                     static_cast<std::uint32_t>(cell),
                                     static_cast<std::uint32_t>(mote), down});
  m.dark = down;
  // Deaf, not powered off: an in-flight MAC attempt may still hit the
  // radio, and set_deaf is the replay-friendly fault (no RNG perturbation).
  m.radio->set_deaf(down);
  if (!down && !m.armed) {
    RngStream& rng = c.lp->sim().rng();
    const SimTime gap = 1 + static_cast<SimTime>(rng.uniform_below(
                                static_cast<std::uint64_t>(
                                    cfg_.beacon_period)));
    arm_beacon(cell, mote, gap);
  }
}

void CellWorld::plan_faults() {
  // Random schedule from the control-plane stream, then any explicit
  // (replayed) faults. Times are clamped so every fault can be announced
  // one lookahead ahead of landing.
  RngStream& rng = control_->sim().rng();
  for (std::size_t k = 0; k < cfg_.random_faults; ++k) {
    FaultSpec f;
    f.cell = static_cast<std::uint32_t>(rng.uniform_below(cfg_.cells));
    f.mote =
        static_cast<std::uint32_t>(rng.uniform_below(cfg_.motes_per_cell));
    f.down_at = static_cast<SimTime>(rng.uniform_below(
        static_cast<std::uint64_t>(cfg_.duration / 2)));
    f.up_at = f.down_at + 1 +
              static_cast<SimTime>(rng.uniform_below(
                  static_cast<std::uint64_t>(cfg_.duration / 4)));
    planned_faults_.push_back(f);
  }
  for (const FaultSpec& f : cfg_.faults) planned_faults_.push_back(f);

  for (FaultSpec& f : planned_faults_) {
    f.down_at = std::max(f.down_at, cfg_.cross_cell_delay);
    f.up_at = std::max(f.up_at, f.down_at + 1);
    TCAST_CHECK(f.cell < cfg_.cells);
    TCAST_CHECK(f.mote < cfg_.motes_per_cell);
    // The control plane announces each edge exactly one lookahead before it
    // lands on the owning cell, from inside its own event (post's lookahead
    // contract is checked against the announcing LP's clock).
    const FaultSpec spec = f;
    control_->sim().schedule_at(
        spec.down_at - cfg_.cross_cell_delay, [this, spec] {
          kernel_.post(*control_, *cells_[spec.cell].lp, spec.down_at, 0,
                       [this, spec] {
                         apply_fault(spec.cell, spec.mote, true);
                       });
        });
    control_->sim().schedule_at(
        spec.up_at - cfg_.cross_cell_delay, [this, spec] {
          kernel_.post(*control_, *cells_[spec.cell].lp, spec.up_at, 0,
                       [this, spec] {
                         apply_fault(spec.cell, spec.mote, false);
                       });
        });
  }
}

std::size_t CellWorld::run() { return kernel_.run_until(cfg_.duration); }

WorldDigest CellWorld::digest() {
  WorldDigest d;
  d.cells.reserve(cells_.size());
  for (Cell& c : cells_) {
    CellDigest cd;
    for (const Mote& m : c.motes) {
      cd.frames_sent += m.mac->frames_sent();
      cd.frames_dropped += m.mac->frames_dropped();
      cd.frames_received += m.radio->frames_received();
    }
    cd.clusters = c.channel->clusters_resolved();
    cd.clock = c.lp->sim().now();
    RngStream probe = c.lp->sim().rng();  // copy: forks the stream
    cd.rng_probe = probe.bits();
    d.cells.push_back(cd);
    d.faults.insert(d.faults.end(), c.fault_log.begin(), c.fault_log.end());
  }
  std::sort(d.faults.begin(), d.faults.end(),
            [](const AppliedFault& a, const AppliedFault& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.cell != b.cell) return a.cell < b.cell;
              if (a.mote != b.mote) return a.mote < b.mote;
              return a.down && !b.down;
            });
  d.events = kernel_.stats().events;
  d.messages = kernel_.stats().messages;
  return d;
}

}  // namespace tcast::sim::parallel
