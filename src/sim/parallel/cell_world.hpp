// LP-sharded packet world: a ring of spatial cells, one LogicalProcess per
// cell, plus a control-plane LP that injects faults.
//
// Each cell owns a full packet-tier stack on its LP-local simulator: a
// radio::Channel, `motes_per_cell` motes (Radio + CsmaMac) sending jittered
// broadcast beacons. Cells are far enough apart that only *adjacent* cells
// hear each other, and with non-zero propagation + slot-boundary delay: a
// transmission starting in cell i is mirrored into cells i±1 as a ghost
// transmission (radio::Channel::inject_transmission) `cross_cell_delay`
// later. That physical delay is exactly the conservative lookahead of the
// i↔i±1 links, so the kernel can let distant cells run far apart in sim
// time while neighbours stay within one frame of each other.
//
// The control-plane LP (rank 0) owns fault injection: crash/reboot events
// are generated from the world seed (or supplied explicitly for replay) and
// *routed to the owning cell* as cross-LP events — a crashed mote goes deaf
// (radio::Radio::set_deaf) and stops beaconing until its reboot arrives.
// Every applied fault is logged LP-locally with its execution time, so a
// replay run driven by the logged schedule must reproduce the log — and the
// whole digest — bit-for-bit.
//
// WorldDigest captures everything the determinism suite compares across
// worker counts: per-cell traffic counters, channel busy periods, final
// clocks, the next raw RNG word of every cell stream, the merged fault log,
// and the kernel's event/message totals. Two runs of the same config are
// correct iff their digests compare equal — under any ThreadPool size,
// including none.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/types.hpp"
#include "mac/csma.hpp"
#include "radio/channel.hpp"
#include "radio/radio.hpp"
#include "sim/parallel/kernel.hpp"

namespace tcast::sim::parallel {

/// One planned crash/reboot: mote `mote` of cell `cell` goes dark over
/// [down_at, up_at). Times are clamped so the control plane can announce
/// them within its lookahead.
struct FaultSpec {
  SimTime down_at = 0;
  SimTime up_at = 0;
  std::uint32_t cell = 0;
  std::uint32_t mote = 0;
  bool operator==(const FaultSpec&) const = default;
};

/// A fault as it actually landed on the owning LP (down and up separately).
struct AppliedFault {
  SimTime time = 0;
  std::uint32_t cell = 0;
  std::uint32_t mote = 0;
  bool down = false;
  bool operator==(const AppliedFault&) const = default;
};

struct CellDigest {
  std::uint64_t frames_sent = 0;     ///< MAC transmissions across the cell
  std::uint64_t frames_dropped = 0;  ///< MAC backoff-exhaustion drops
  std::uint64_t frames_received = 0; ///< address-accepted deliveries
  std::uint64_t clusters = 0;        ///< channel busy periods resolved
  SimTime clock = 0;                 ///< LP clock after the run
  std::uint64_t rng_probe = 0;       ///< next raw word of the cell stream
  bool operator==(const CellDigest&) const = default;
};

struct WorldDigest {
  std::vector<CellDigest> cells;
  std::vector<AppliedFault> faults;  ///< merged, (time, cell, mote) order
  std::uint64_t events = 0;          ///< kernel total events executed
  std::uint64_t messages = 0;        ///< kernel cross-LP messages routed
  bool operator==(const WorldDigest&) const = default;
};

struct CellWorldConfig {
  std::size_t cells = 4;
  std::size_t motes_per_cell = 8;
  std::uint64_t seed = 1;
  /// Sim-time horizon run() drives to (beacons are perpetual).
  SimTime duration = 200 * kMillisecond;
  /// Mean beacon spacing per mote; actual gaps are period/2 + U[0, period).
  SimTime beacon_period = 20 * kMillisecond;
  /// Propagation + slot-boundary delay between adjacent cells — the
  /// conservative lookahead of every cross-cell link (802.15.4 backoff
  /// slot by default).
  SimTime cross_cell_delay = 320 * kMicrosecond;
  double clean_loss = 0.0;  ///< i.i.d. per-receiver loss inside a cell
  /// Crash/reboot pairs drawn from the control-plane stream.
  std::size_t random_faults = 0;
  /// Explicit fault schedule (appended after the random ones) — how a
  /// replay run reproduces a previously logged campaign.
  std::vector<FaultSpec> faults;
  /// Worker pool for the kernel; nullptr = inline sequential reference.
  ThreadPool* pool = nullptr;
};

class CellWorld {
 public:
  explicit CellWorld(CellWorldConfig cfg);
  ~CellWorld();

  CellWorld(const CellWorld&) = delete;
  CellWorld& operator=(const CellWorld&) = delete;

  /// Drives the world to cfg.duration. Returns events executed.
  std::size_t run();

  /// Everything the determinism suite compares (probes the RNG streams, so
  /// take it once, after run()).
  WorldDigest digest();

  /// The full planned schedule (random + explicit, clamped) — feed back via
  /// CellWorldConfig::faults to replay this world's faults exactly.
  const std::vector<FaultSpec>& planned_faults() const {
    return planned_faults_;
  }

  const KernelStats& stats() const { return kernel_.stats(); }
  ParallelKernel& kernel() { return kernel_; }

 private:
  struct Mote {
    std::unique_ptr<radio::Radio> radio;
    std::unique_ptr<mac::CsmaMac> mac;
    std::uint8_t seq = 0;
    bool dark = false;   ///< crashed: deaf and not beaconing
    bool armed = false;  ///< a beacon event is pending
  };

  struct Cell {
    LogicalProcess* lp = nullptr;
    std::unique_ptr<radio::Channel> channel;
    std::vector<Mote> motes;
    std::vector<AppliedFault> fault_log;  ///< LP-local; merged in digest()
  };

  radio::ShortAddr addr(std::size_t cell, std::size_t mote) const {
    return static_cast<radio::ShortAddr>(cell * cfg_.motes_per_cell + mote +
                                         1);
  }
  void arm_beacon(std::size_t cell, std::size_t mote, SimTime gap);
  void beacon_fire(std::size_t cell, std::size_t mote);
  void apply_fault(std::size_t cell, std::size_t mote, bool down);
  void plan_faults();

  CellWorldConfig cfg_;
  ParallelKernel kernel_;
  LogicalProcess* control_ = nullptr;
  std::vector<Cell> cells_;
  std::vector<FaultSpec> planned_faults_;
};

}  // namespace tcast::sim::parallel
