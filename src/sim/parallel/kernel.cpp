#include "sim/parallel/kernel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::sim::parallel {

ParallelKernel::ParallelKernel(KernelConfig cfg) : cfg_(cfg) {}

ParallelKernel::~ParallelKernel() = default;

LogicalProcess& ParallelKernel::add_lp(std::uint64_t seed,
                                       std::uint64_t stream) {
  auto sim = std::make_unique<Simulator>(seed, stream);
  lps_.emplace_back(new LogicalProcess(std::move(sim), nullptr,
                                       static_cast<LpRank>(lps_.size())));
  return *lps_.back();
}

LogicalProcess& ParallelKernel::adopt_lp(Simulator& sim) {
  lps_.emplace_back(
      new LogicalProcess(nullptr, &sim, static_cast<LpRank>(lps_.size())));
  return *lps_.back();
}

void ParallelKernel::connect(LogicalProcess& src, LogicalProcess& dst,
                             SimTime lookahead) {
  TCAST_CHECK_MSG(lookahead >= 1,
                  "conservative links need lookahead >= 1 tick");
  TCAST_CHECK(&src != &dst);
  links_.push_back(Link{src.rank(), dst.rank(), lookahead});
  dst.in_links_.emplace_back(src.rank(), lookahead);
}

void ParallelKernel::post(LogicalProcess& src, LogicalProcess& dst,
                          SimTime time, EventPriority priority, EventFn fn) {
  // The lookahead promise is per link; find it (few links per LP).
  SimTime lookahead = -1;
  for (const auto& [s, l] : dst.in_links_)
    if (s == src.rank()) {
      lookahead = l;
      break;
    }
  TCAST_CHECK_MSG(lookahead >= 1, "post without a connected link");
  TCAST_CHECK_MSG(time >= src.sim().now() + lookahead,
                  "post violates the link's lookahead promise");
  src.outbox_.push_back(LogicalProcess::Message{
      time, priority, src.rank(), src.next_out_seq_++, dst.rank(),
      std::move(fn)});
}

void ParallelKernel::compute_horizons(SimTime deadline) {
  for (auto& lp : lps_) {
    lp->next_ = lp->sim_->pending() ? lp->sim_->next_event_time()
                                    : kHorizonInf;
    lp->eit_ = kHorizonInf;
  }
  // Relax earliest-input-times over the link graph. T(s) = min(next_s,
  // EIT_s) is a lower bound on s's next execution time; every pass
  // propagates one more hop, so lps_.size() passes reach a fixed point on
  // any simple dependency chain (cycles converge earlier: EIT values only
  // decrease and are bounded below by min(next) + min lookahead).
  for (std::size_t pass = 0; pass < lps_.size(); ++pass) {
    bool changed = false;
    ++stats_.relax_passes;
    for (const Link& link : links_) {
      LogicalProcess& s = *lps_[link.src];
      const SimTime t_src = std::min(s.next_, s.eit_);
      if (t_src >= kHorizonInf) continue;
      const SimTime cand = t_src + link.lookahead;
      LogicalProcess& d = *lps_[link.dst];
      if (cand < d.eit_) {
        d.eit_ = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  const SimTime cap =
      deadline >= kHorizonInf ? kHorizonInf : deadline + 1;
  for (auto& lp : lps_) lp->horizon_ = std::min(lp->eit_, cap);
}

void ParallelKernel::drain_lps(LogicalProcess* watch,
                               const std::function<bool()>* done) {
  struct Ctx {
    ParallelKernel* k;
    LogicalProcess* watch;
    const std::function<bool()>* done;
  } ctx{this, watch, done};
  const auto body = [](void* raw, std::size_t i) {
    auto& c = *static_cast<Ctx*>(raw);
    LogicalProcess& lp = *c.k->lps_[i];
    if (&lp == c.watch && c.done != nullptr)
      lp.executed_ = lp.sim_->run_before_flag(lp.horizon_, *c.done);
    else
      lp.executed_ = lp.sim_->run_before(lp.horizon_);
  };
  if (cfg_.pool == nullptr || lps_.size() <= 1) {
    for (std::size_t i = 0; i < lps_.size(); ++i) body(&ctx, i);
  } else {
    cfg_.pool->run_batch(lps_.size(), body, &ctx);
  }
}

std::size_t ParallelKernel::route_outboxes() {
  // Gather, then deliver per destination in (time, priority, src rank, src
  // seq) order — the deterministic extension of the event queue's
  // (time, priority, seq) tie-break with a stable LP rank. Insertion order
  // fixes the destination queue's local sequence numbers, so the merged
  // schedule is independent of which worker drained which LP.
  route_scratch_.clear();
  for (auto& lp : lps_) {
    for (auto& m : lp->outbox_) route_scratch_.push_back(std::move(m));
    lp->outbox_.clear();
  }
  if (route_scratch_.empty()) return 0;
  std::sort(route_scratch_.begin(), route_scratch_.end(),
            [](const LogicalProcess::Message& a,
               const LogicalProcess::Message& b) {
              if (a.dst != b.dst) return a.dst < b.dst;
              if (a.time != b.time) return a.time < b.time;
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& m : route_scratch_) {
    Simulator& dst = *lps_[m.dst]->sim_;
    TCAST_CHECK_MSG(m.time >= dst.now(),
                    "cross-LP event arrived in the destination's past");
    dst.schedule_at(m.time, m.priority, std::move(m.fn));
  }
  const std::size_t routed = route_scratch_.size();
  route_scratch_.clear();
  return routed;
}

std::size_t ParallelKernel::step_window(SimTime deadline,
                                        LogicalProcess* watch,
                                        const std::function<bool()>* done) {
  compute_horizons(deadline);
  bool runnable = false;
  for (const auto& lp : lps_)
    if (lp->next_ < lp->horizon_) {
      runnable = true;
      break;
    }
  if (!runnable) return 0;

  ++stats_.windows;
  drain_lps(watch, done);

  std::size_t executed = 0;
  std::size_t active_lps = 0;
  for (const auto& lp : lps_) {
    executed += lp->executed_;
    if (lp->executed_ > 0) ++active_lps;
  }
  stats_.events += executed;
  if (active_lps <= 1 && lps_.size() > 1) ++stats_.stalled_windows;
  stats_.messages += route_outboxes();
  // With every lookahead ≥ 1 the globally earliest LP always clears its
  // EIT, so a runnable window that executed nothing means the watch flag
  // stopped it — legal — or a horizon bug.
  TCAST_CHECK_MSG(executed > 0 || watch != nullptr,
                  "conservative window made no progress");
  return executed;
}

std::size_t ParallelKernel::run() { return run_until(kHorizonInf); }

std::size_t ParallelKernel::run_until(SimTime deadline) {
  std::size_t total = 0;
  for (;;) {
    const std::size_t executed = step_window(deadline, nullptr, nullptr);
    if (executed == 0) break;
    total += executed;
  }
  return total;
}

std::size_t ParallelKernel::run_until_flag(
    LogicalProcess& watch, const std::function<bool()>& done) {
  std::size_t total = 0;
  while (!done()) {
    const std::size_t executed = step_window(kHorizonInf, &watch, &done);
    total += executed;
    if (executed == 0) break;  // drained without the flag: caller decides
    TCAST_CHECK_MSG(total < cfg_.max_steps,
                    "ParallelKernel::run_until_flag: hang guard hit");
  }
  return total;
}

}  // namespace tcast::sim::parallel
