#include "sim/timer.hpp"

#include "common/check.hpp"

namespace tcast::sim {

void Timer::start_one_shot(SimTime delay) {
  stop();
  period_ = 0;
  arm(delay);
}

void Timer::start_periodic(SimTime period) {
  TCAST_CHECK(period > 0);
  stop();
  period_ = period;
  arm(period);
}

void Timer::stop() {
  if (pending_ != 0) {
    sim_->cancel(pending_);
    pending_ = 0;
  }
  period_ = 0;
}

void Timer::arm(SimTime delay) {
  pending_ = sim_->schedule_after(delay, [this] { on_fire(); });
}

void Timer::on_fire() {
  pending_ = 0;
  const SimTime period = period_;
  fired_();  // may stop() or re-start this timer
  if (period != 0 && period_ == period && pending_ == 0) arm(period);
}

}  // namespace tcast::sim
