// Pending-event set for the discrete-event kernel.
//
// Ordering is (time, sequence): events at equal times fire in scheduling
// order, which makes runs fully deterministic. Cancellation is lazy — the
// heap keeps a tombstone and the callback map drops the closure immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace tcast::sim {

using EventFn = std::function<void()>;

/// Opaque handle for cancellation. 0 is never issued.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. `t` may equal the time of the
  /// event currently executing (same-time follow-ups run later this step).
  EventId schedule(SimTime t, EventFn fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // doubles as sequence number: monotonically increasing
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : id > o.id;
    }
  };

  void skip_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, EventFn> callbacks_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace tcast::sim
