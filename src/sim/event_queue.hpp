// Pending-event set for the discrete-event kernel.
//
// Ordering is (time, priority, sequence): events at equal times fire in
// ascending priority value (default 0), ties in scheduling order, which
// makes runs fully deterministic. Cancellation is lazy — the heap keeps a
// tombstone and the closure slot is recycled immediately.
//
// The heap is a hand-rolled 4-ary min-heap over 24-byte entries in one
// pre-reserved flat vector: ~half the sift-down depth of a binary heap and
// far better cache behavior than std::priority_queue's node compares, which
// matters because the packet tier builds one EventQueue per Monte-Carlo
// trial and pushes/pops thousands of events through it.
//
// Closures live in a flat slot pool (the low bits of an EventId name the
// slot; the high bits carry the monotonic sequence the ordering relies
// on), recycled through a free list. Steady-state scheduling therefore
// never touches the heap allocator — the packet tier's
// zero-allocations-per-query audit (tests/perf/alloc_audit_test.cpp)
// rests on this, so closures on hot paths must also fit std::function's
// inline buffer (16 bytes on libstdc++).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace tcast::sim {

using EventFn = std::function<void()>;

/// Opaque handle for cancellation. 0 is never issued.
using EventId = std::uint64_t;

/// Tie-break rank at equal times: lower fires first. Default 0.
using EventPriority = std::int32_t;

class EventQueue {
 public:
  EventQueue();

  /// Schedules `fn` at absolute time `t` with default priority 0. `t` may
  /// equal the time of the event currently executing (same-time follow-ups
  /// run later this step).
  EventId schedule(SimTime t, EventFn fn);

  /// Schedules with an explicit same-time rank: at equal `t`, lower
  /// `priority` fires first; equal (t, priority) fires in schedule order.
  EventId schedule(SimTime t, EventPriority priority, EventFn fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  SimTime next_time() const;

  /// Pops and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // high bits are the sequence number: schedule order
    EventPriority priority;
  };
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.id < b.id;  // sequence dominates the slot bits
  }

  // EventId layout: (sequence << kSlotBits) | slot. The sequence is
  // monotonic, so id comparison is schedule-order comparison whatever slot
  // an event landed in; a slot's current owner id detects staleness.
  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr EventId kSlotMask = (EventId{1} << kSlotBits) - 1;

  bool entry_live(const Entry& e) const {
    const auto slot = static_cast<std::size_t>(e.id & kSlotMask);
    return slot_owner_[slot] == e.id;
  }

  void heap_push(const Entry& e) const;
  void heap_pop_top() const;
  void skip_dead() const;

  // mutable: next_time() is logically const but compacts tombstones.
  mutable std::vector<Entry> heap_;  ///< 4-ary min-heap, pre-reserved
  std::vector<EventFn> slots_;       ///< closure storage, slot-indexed
  std::vector<EventId> slot_owner_;  ///< owning id per slot; 0 = free
  std::vector<std::uint32_t> free_slots_;
  EventId next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace tcast::sim
