#include "common/rng.hpp"

namespace tcast {

std::uint64_t trial_stream_id(std::uint64_t experiment_id,
                              std::uint64_t trial) {
  // Mix so that (experiment, trial) pairs land far apart in stream space.
  SplitMix64 sm(experiment_id * 0xd1342543de82ef95ULL + trial);
  return sm.next();
}

}  // namespace tcast
