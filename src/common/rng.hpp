// Deterministic pseudo-random number generation for reproducible experiments.
//
// Design:
//  * `SplitMix64` — tiny stateless-seeding generator, used only to expand a
//    user seed into generator state (the construction recommended by the
//    xoshiro authors).
//  * `Xoshiro256pp` — xoshiro256++ 1.0 (Blackman & Vigna), the workhorse
//    engine. Satisfies std::uniform_random_bit_generator so it plugs into
//    <random> distributions.
//  * `RngStream` — a convenience wrapper bundling an engine with the common
//    sampling operations the simulators need (uniform ints/reals, normals,
//    Bernoulli, Fisher-Yates shuffle, subset sampling).
//
// Stream independence: `RngStream(seed, stream)` hashes (seed, stream) through
// SplitMix64 into a fresh 256-bit state, so every Monte-Carlo trial and every
// simulated node can own a statistically independent stream while the whole
// experiment stays a pure function of one root seed.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace tcast {

namespace detail {

// GCC/Clang always provide __int128 on 64-bit targets; __extension__
// silences -Wpedantic about it being non-ISO.
__extension__ using Uint128 = unsigned __int128;

/// Cached reciprocal m = floor(2^64 / bound) and rejection threshold
/// 2^64 mod bound for the division-free uniform_below fast path. One
/// 64-bit division ever per (thread, cache slot, bound); the Monte-Carlo
/// hot loops (Fisher-Yates over a fixed n, positive-set sampling)
/// re-request the same descending bound sequence every trial, so after the
/// first trial every lookup hits. Direct-mapped, statically
/// zero-initialized (bound 0 is rejected before lookup, so the empty slot
/// never false-hits), no heap — the perf-tier allocation audit counts on
/// that.
struct Reciprocal {
  std::uint64_t bound;
  std::uint64_t m;
  std::uint64_t threshold;
};

inline const Reciprocal& reciprocal_for(std::uint64_t bound) {
  constexpr std::size_t kSlots = 4096;  // covers bounds 2..4097 collision-free
  thread_local Reciprocal cache[kSlots];
  Reciprocal& e = cache[bound & (kSlots - 1)];
  if (e.bound != bound) {
    e.bound = bound;
    e.m = ~std::uint64_t{0} / bound;
    // 2^64 mod bound = 2^64 - m·bound, in wrapping u64 arithmetic.
    e.threshold = 0 - e.m * bound;
  }
  return e;
}

}  // namespace detail

/// SplitMix64: used for state expansion / hashing seeds, not as a main engine.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0. Public domain algorithm by David Blackman and
/// Sebastiano Vigna; reimplemented here for hermetic builds.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds state via SplitMix64 expansion of (seed, stream).
  explicit Xoshiro256pp(std::uint64_t seed, std::uint64_t stream = 0) {
    SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    for (auto& s : state_) s = sm.next();
    // All-zero state is invalid; SplitMix64 cannot emit 4 zeros for any seed,
    // but keep the guard for documentation value.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
      state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// An independent random stream plus the sampling toolkit used across the
/// simulators. Cheap to copy; copying forks the stream deterministically.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed, std::uint64_t stream = 0)
      : engine_(seed, stream) {}

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

  /// Uniform integer in [0, bound), exactly unbiased. Division-free: the
  /// classic rejection loop with the threshold and modulo evaluated through
  /// a cached reciprocal (detail::reciprocal_for). Draw-for-draw identical
  /// to uniform_below_reference — same engine draws consumed, same values
  /// returned, for every bound — which rng_test proves exhaustively at the
  /// edge bounds and randomly in between.
  std::uint64_t uniform_below(std::uint64_t bound) {
    TCAST_CHECK(bound > 0);
    if ((bound & (bound - 1)) == 0) {
      // Power of two (including 1): 2^64 mod bound == 0, so the first draw
      // is always accepted and the modulo is a mask.
      return engine_() & (bound - 1);
    }
    const detail::Reciprocal& rec = detail::reciprocal_for(bound);
    const std::uint64_t m = rec.m;
    for (;;) {
      const std::uint64_t r = engine_();
      if (r < rec.threshold) continue;
      // q̂ = floor(r·m / 2^64) ∈ {q-1, q} for the true quotient q = r/bound
      // (proof: m = (2^64-θ)/bound with θ < bound, so r·m/2^64 lies in
      // (r/bound - 1, r/bound]), hence one conditional subtract corrects.
      const std::uint64_t qhat = static_cast<std::uint64_t>(
          (static_cast<detail::Uint128>(r) * m) >> 64);
      std::uint64_t rem = r - qhat * bound;
      if (rem >= bound) rem -= bound;
      return rem;
    }
  }

  /// The historical two-division rejection loop, kept verbatim as the
  /// draw-compatibility oracle for uniform_below (tests only).
  std::uint64_t uniform_below_reference(std::uint64_t bound) {
    TCAST_CHECK(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = engine_();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    TCAST_CHECK(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(range == 0 ? engine_()
                                                     : uniform_below(range));
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    TCAST_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial.
  bool bernoulli(double p) {
    TCAST_DCHECK(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
  }

  /// Standard normal via Box-Muller (no state caching: simple & deterministic).
  double normal() {
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793238462643383279502884 * u2);
  }

  double normal(double mean, double stddev) {
    TCAST_CHECK(stddev >= 0.0);
    return mean + stddev * normal();
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Draws a uniformly random k-subset of [0, n) (IDs, sorted ascending).
  std::vector<NodeId> sample_subset(std::size_t n, std::size_t k) {
    TCAST_CHECK(k <= n);
    std::vector<NodeId> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<NodeId>(i);
    // Partial Fisher-Yates: first k entries become the sample.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(uniform_below(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    std::sort(pool.begin(), pool.end());
    return pool;
  }

  /// Access the raw engine for <random> distributions.
  Xoshiro256pp& engine() { return engine_; }

 private:
  Xoshiro256pp engine_;
};

/// Derives the per-trial stream id used by the Monte-Carlo driver, kept in
/// one place so tests can reproduce individual trials.
std::uint64_t trial_stream_id(std::uint64_t experiment_id, std::uint64_t trial);

}  // namespace tcast
