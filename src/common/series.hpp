// SeriesTable: the output format of every figure-reproduction bench.
//
// A table has one x-axis column plus named series columns; rows are keyed by
// x. Benches fill it and print either an aligned human table or CSV, so the
// same binary serves eyeballing and plotting.
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace tcast {

class SeriesTable {
 public:
  explicit SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

  /// Declares a series column (idempotent); returns its index.
  std::size_t series(const std::string& name);

  /// Sets the value of `name` at axis position x.
  void set(double x, const std::string& name, double value);

  /// All x positions, ascending.
  std::vector<double> axis() const;

  /// Value at (x, name) if present.
  std::optional<double> at(double x, const std::string& name) const;

  const std::vector<std::string>& series_names() const { return names_; }
  const std::string& x_label() const { return x_label_; }

  /// Aligned, human-readable table.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (header row, '.' decimal point, blank for missing).
  void print_csv(std::ostream& os) const;

 private:
  std::string x_label_;
  std::vector<std::string> names_;
  std::map<double, std::vector<std::optional<double>>> rows_;
};

/// Prints a section banner used by the benches ("== Fig 1: ... ==").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace tcast
