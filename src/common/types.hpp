// Fundamental vocabulary types shared by every tcast subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace tcast {

/// Identifier of a participant node (mote). Dense, 0-based. The initiator is
/// not a participant and has no NodeId; subsystems that need to address it on
/// the air use radio short addresses instead.
using NodeId = std::uint32_t;

/// Sentinel "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Simulated time in microseconds. 64 bits give ~292k years of sim time.
using SimTime = std::int64_t;

/// One microsecond / millisecond / second in SimTime units.
inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Count of RCD queries (the paper's cost unit).
using QueryCount = std::uint64_t;

}  // namespace tcast
