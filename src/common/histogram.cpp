#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace tcast {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  TCAST_CHECK(hi > lo);
  TCAST_CHECK(bins > 0);
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / bin_width_));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width_;
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + static_cast<double>(i + 1) * bin_width_;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width_;
}

double Histogram::density(std::size_t i) const {
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double Histogram::quantile(double q) const {
  TCAST_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ <= 0.0) return lo_;
  const double target = q * total_;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] >= target) {
      const double frac =
          counts_[i] > 0.0 ? (target - cum) / counts_[i] : 0.0;
      return bin_lo(i) + frac * bin_width_;
    }
    cum += counts_[i];
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char head[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(head, sizeof head, "[%8.2f, %8.2f) %8.0f |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += head;
    const std::size_t bar =
        peak > 0.0 ? static_cast<std::size_t>(std::lround(
                         counts_[i] / peak * static_cast<double>(width)))
                   : 0;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace tcast
