// Lightweight precondition / invariant checking.
//
// TCAST_CHECK is always on (cheap conditions on API boundaries);
// TCAST_DCHECK compiles out in NDEBUG builds (hot-path invariants).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tcast::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "TCAST_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace tcast::detail

#define TCAST_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr))                                                   \
      ::tcast::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TCAST_CHECK_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr))                                                     \
      ::tcast::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define TCAST_DCHECK(expr) ((void)0)
#else
#define TCAST_DCHECK(expr) TCAST_CHECK(expr)
#endif
