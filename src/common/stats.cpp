#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tcast {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return n_ >= 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

std::string RunningStats::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "mean=%.4g sd=%.4g n=%zu [%.4g, %.4g]",
                mean(), stddev(), n_, min(), max());
  return buf;
}

double Proportion::half_width95() const {
  if (n_ == 0) return 0.0;
  const double p = value();
  const double n = static_cast<double>(n_);
  return 1.959963984540054 * std::sqrt(std::max(p * (1.0 - p), 0.0) / n);
}

}  // namespace tcast
