#include "common/parallel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    TCAST_CHECK_MSG(!stop_, "submit on a stopped pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (n == 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t workers = pool->worker_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    pool->submit([&body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool->wait_idle();
}

}  // namespace tcast
