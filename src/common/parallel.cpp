#include "common/parallel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast {

namespace {
/// Set for the lifetime of a worker thread; lets wait_idle()/run_batch()
/// detect (and loudly reject) nested waits that would deadlock the pool.
thread_local const ThreadPool* t_worker_of = nullptr;
/// Set while an external thread is inside run_batch(): it helps drain the
/// batch, so a batch body can execute on it and must not re-enter the pool
/// (batch_mu_ is held — re-entry would self-deadlock).
thread_local const ThreadPool* t_batch_caller_of = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_of == this; }

bool ThreadPool::in_batch_on_this_thread() const {
  return t_worker_of == this || t_batch_caller_of == this;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    TCAST_CHECK_MSG(!stop_, "submit on a stopped pool");
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  TCAST_CHECK_MSG(!on_worker_thread(),
                  "wait_idle from a worker of this pool: a task that submits "
                  "work and then blocks on it deadlocks the pool (no "
                  "nested-wait support)");
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::drain_batch(BatchFn fn, void* ctx, std::size_t end) {
  std::size_t done = 0;
  for (;;) {
    const std::size_t i = batch_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) break;
    fn(ctx, i);
    ++done;
  }
  return done;
}

void ThreadPool::run_batch(std::size_t count, BatchFn fn, void* ctx) {
  if (count == 0) return;
  TCAST_CHECK_MSG(!on_worker_thread(),
                  "run_batch from a worker of this pool would deadlock (no "
                  "nested-wait support); parallel_for runs inline instead");
  TCAST_CHECK_MSG(t_batch_caller_of != this,
                  "run_batch re-entered from a batch body on the calling "
                  "thread would self-deadlock; parallel_for runs inline "
                  "instead");
  // One batch at a time: external callers serialize here, so the batch_*
  // fields always describe the single active batch.
  std::lock_guard serialize(batch_mu_);
  t_batch_caller_of = this;
  {
    std::lock_guard lk(mu_);
    TCAST_CHECK_MSG(!stop_, "run_batch on a stopped pool");
    batch_fn_ = fn;
    batch_ctx_ = ctx;
    batch_next_.store(0, std::memory_order_relaxed);
    batch_end_ = count;
    batch_done_ = 0;
  }
  cv_task_.notify_all();
  const std::size_t done = drain_batch(fn, ctx, count);  // caller helps
  std::unique_lock lk(mu_);
  batch_done_ += done;
  // Wait for completion AND for every participating worker to leave
  // drain_batch, so no stale snapshot can touch the next batch's cursor.
  cv_idle_.wait(lk, [this] {
    return batch_done_ == batch_end_ && batch_workers_ == 0;
  });
  batch_fn_ = nullptr;
  batch_ctx_ = nullptr;
  batch_end_ = 0;
  t_batch_caller_of = nullptr;
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  std::unique_lock lk(mu_);
  for (;;) {
    cv_task_.wait(lk, [this] {
      return stop_ || task_head_ < tasks_.size() || batch_pending_locked();
    });
    if (task_head_ < tasks_.size()) {
      std::function<void()> task = std::move(tasks_[task_head_++]);
      if (task_head_ == tasks_.size()) {
        tasks_.clear();  // keeps capacity: the buffer is reused
        task_head_ = 0;
      }
      lk.unlock();
      task();
      lk.lock();
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
      continue;
    }
    if (batch_pending_locked()) {
      const BatchFn fn = batch_fn_;
      void* ctx = batch_ctx_;
      const std::size_t end = batch_end_;
      ++batch_workers_;
      lk.unlock();
      const std::size_t done = drain_batch(fn, ctx, end);
      lk.lock();
      batch_done_ += done;
      --batch_workers_;
      if (batch_done_ == batch_end_ && batch_workers_ == 0)
        cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;  // stopped and fully drained
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  parallel_for<const std::function<void(std::size_t)>&>(n, body, pool);
}

}  // namespace tcast
