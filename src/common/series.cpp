#include "common/series.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace tcast {

std::size_t SeriesTable::series(const std::string& name) {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it != names_.end())
    return static_cast<std::size_t>(it - names_.begin());
  names_.push_back(name);
  for (auto& [x, row] : rows_) row.resize(names_.size());
  return names_.size() - 1;
}

void SeriesTable::set(double x, const std::string& name, double value) {
  const std::size_t col = series(name);
  auto& row = rows_[x];
  row.resize(names_.size());
  row[col] = value;
}

std::vector<double> SeriesTable::axis() const {
  std::vector<double> xs;
  xs.reserve(rows_.size());
  for (const auto& [x, row] : rows_) xs.push_back(x);
  return xs;
}

std::optional<double> SeriesTable::at(double x,
                                      const std::string& name) const {
  const auto it = rows_.find(x);
  if (it == rows_.end()) return std::nullopt;
  const auto col = std::find(names_.begin(), names_.end(), name);
  if (col == names_.end()) return std::nullopt;
  const auto idx = static_cast<std::size_t>(col - names_.begin());
  return idx < it->second.size() ? it->second[idx] : std::nullopt;
}

namespace {
std::string fmt_num(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}
}  // namespace

void SeriesTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  widths.push_back(x_label_.size());
  for (const auto& n : names_) widths.push_back(n.size());
  for (const auto& [x, row] : rows_) {
    widths[0] = std::max(widths[0], fmt_num(x).size());
    for (std::size_t c = 0; c < names_.size(); ++c) {
      const std::string cell =
          (c < row.size() && row[c]) ? fmt_num(*row[c]) : "-";
      widths[c + 1] = std::max(widths[c + 1], cell.size());
    }
  }
  os << std::setw(static_cast<int>(widths[0])) << x_label_;
  for (std::size_t c = 0; c < names_.size(); ++c)
    os << "  " << std::setw(static_cast<int>(widths[c + 1])) << names_[c];
  os << '\n';
  for (const auto& [x, row] : rows_) {
    os << std::setw(static_cast<int>(widths[0])) << fmt_num(x);
    for (std::size_t c = 0; c < names_.size(); ++c) {
      const std::string cell =
          (c < row.size() && row[c]) ? fmt_num(*row[c]) : "-";
      os << "  " << std::setw(static_cast<int>(widths[c + 1])) << cell;
    }
    os << '\n';
  }
}

void SeriesTable::print_csv(std::ostream& os) const {
  os << x_label_;
  for (const auto& n : names_) os << ',' << n;
  os << '\n';
  for (const auto& [x, row] : rows_) {
    os << fmt_num(x);
    for (std::size_t c = 0; c < names_.size(); ++c) {
      os << ',';
      if (c < row.size() && row[c]) os << fmt_num(*row[c]);
    }
    os << '\n';
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace tcast
