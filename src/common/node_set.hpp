// NodeSet — a packed bitset over the participant universe, the set-algebra
// substrate of the abstract tier's fast path.
//
// Group-testing theory frames a bin query as "is bin ∩ positives empty?",
// which on 64-bit words is AND + popcount: one word operation covers 64
// nodes. NodeSet stores membership as words and exposes exactly the
// operations the query kernel and the round engine need — intersection
// tests and counts, selection (first/nth member), word-level iteration, and
// bulk ANDNOT removal — plus an in-place random-equal partitioner that
// replaces the shuffle-then-deal bin construction with one strided gather
// into a flat arena.
//
// Determinism contract: nothing in here draws randomness except
// `random_equal_partition_into`, which consumes exactly the Fisher-Yates
// draw sequence of `RngStream::shuffle` (same draws, same resulting
// partition as the historical shuffle-and-deal — the paper-pseudocode
// conformance test depends on this).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/simd_kernels.hpp"
#include "common/types.hpp"

namespace tcast {

class NodeSet {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  static constexpr std::size_t words_for(std::size_t universe) {
    return (universe + kWordBits - 1) / kWordBits;
  }

  NodeSet() = default;
  explicit NodeSet(std::size_t universe) { reset(universe); }

  /// Resizes to `universe` ids and clears all membership.
  void reset(std::size_t universe) {
    universe_ = universe;
    words_.assign(words_for(universe), Word{0});
    count_ = 0;
  }

  /// Clears membership, keeping the universe (and the allocation).
  void clear() {
    std::fill(words_.begin(), words_.end(), Word{0});
    count_ = 0;
  }

  std::size_t universe() const { return universe_; }
  std::size_t word_count() const { return words_.size(); }
  std::span<const Word> words() const { return words_; }

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool test(NodeId id) const {
    TCAST_DCHECK(static_cast<std::size_t>(id) < universe_);
    return (words_[static_cast<std::size_t>(id) / kWordBits] >>
            (static_cast<std::size_t>(id) % kWordBits)) &
           1u;
  }

  /// Inserts `id`; returns true when it was not already a member.
  bool insert(NodeId id) {
    TCAST_DCHECK(static_cast<std::size_t>(id) < universe_);
    Word& w = words_[static_cast<std::size_t>(id) / kWordBits];
    const Word bit = Word{1} << (static_cast<std::size_t>(id) % kWordBits);
    if (w & bit) return false;
    w |= bit;
    ++count_;
    return true;
  }

  /// Erases `id`; returns true when it was a member.
  bool erase(NodeId id) {
    TCAST_DCHECK(static_cast<std::size_t>(id) < universe_);
    Word& w = words_[static_cast<std::size_t>(id) / kWordBits];
    const Word bit = Word{1} << (static_cast<std::size_t>(id) % kWordBits);
    if (!(w & bit)) return false;
    w &= ~bit;
    --count_;
    return true;
  }

  /// Images at or below this many words (512 nodes) take the inlined scalar
  /// loop: the out-of-line SIMD dispatch costs more than the loop itself at
  /// small universes, and every variant is bit-identical anyway.
  static constexpr std::size_t kInlineWords = 8;

  /// Do two word images share a member? Lengths may differ: a shorter image
  /// simply has no members beyond its last word. Wide images dispatch to
  /// the SIMD kernel layer (common/simd_kernels.hpp).
  static bool intersects(std::span<const Word> a, std::span<const Word> b) {
    const std::size_t n = a.size() < b.size() ? a.size() : b.size();
    if (n <= kInlineWords) {
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] & b[i]) return true;
      return false;
    }
    return simd::words_intersect(a.data(), b.data(), n);
  }

  static std::size_t intersection_count(std::span<const Word> a,
                                        std::span<const Word> b) {
    const std::size_t n = a.size() < b.size() ? a.size() : b.size();
    if (n <= kInlineWords) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
      return total;
    }
    return simd::words_and_popcount(a.data(), b.data(), n);
  }

  /// Smallest member, or kNoNode when empty.
  NodeId first_member() const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] != 0)
        return static_cast<NodeId>(
            i * kWordBits +
            static_cast<std::size_t>(std::countr_zero(words_[i])));
    return kNoNode;
  }

  /// The n-th member (0-based) in ascending id order. Requires n < count().
  NodeId nth_member(std::size_t n) const {
    TCAST_DCHECK(n < count_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const auto pop = static_cast<std::size_t>(std::popcount(words_[i]));
      if (n >= pop) {
        n -= pop;
        continue;
      }
      Word w = words_[i];
      while (n > 0) {
        w &= w - 1;  // clear lowest set bit
        --n;
      }
      return static_cast<NodeId>(
          i * kWordBits + static_cast<std::size_t>(std::countr_zero(w)));
    }
    TCAST_CHECK_MSG(false, "nth_member past the last member");
    return kNoNode;
  }

  /// Visits members in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      Word w = words_[i];
      while (w != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(w));
        fn(static_cast<NodeId>(i * kWordBits + bit));
        w &= w - 1;
      }
    }
  }

  /// Appends members in ascending id order (does not clear `out`).
  void append_members(std::vector<NodeId>& out) const {
    for_each([&out](NodeId id) { out.push_back(id); });
  }

  /// Removes every member present in `other` (this &= ~other), returning how
  /// many members were actually removed.
  std::size_t remove_words(std::span<const Word> other) {
    const std::size_t n =
        other.size() < words_.size() ? other.size() : words_.size();
    std::size_t removed;
    if (n <= kInlineWords) {
      removed = 0;
      for (std::size_t i = 0; i < n; ++i) {
        removed += static_cast<std::size_t>(std::popcount(words_[i] & other[i]));
        words_[i] &= ~other[i];
      }
    } else {
      removed = simd::words_andnot_count(words_.data(), other.data(), n);
    }
    count_ -= removed;
    return removed;
  }

  /// Bulk-inserts the id range [0, n) into an empty set — the structure-of-
  /// arrays fast path for "everyone is alive" universes, replacing n
  /// single-bit inserts with a word-image prefix fill. Requires n ≤
  /// universe() and an empty set (the caller owns duplicate detection).
  void fill_prefix(std::size_t n) {
    TCAST_CHECK(count_ == 0);
    TCAST_CHECK(n <= universe_);
    const std::size_t full = n / kWordBits;
    for (std::size_t i = 0; i < full; ++i) words_[i] = ~Word{0};
    if (n % kWordBits != 0) {
      words_[full] = (Word{1} << (n % kWordBits)) - 1;
    }
    count_ = n;
  }

 private:
  std::vector<Word> words_;
  std::size_t universe_ = 0;
  std::size_t count_ = 0;
};

/// In-place random-equal partitioner. Permutes `items` (Fisher-Yates, the
/// exact draw sequence of `RngStream::shuffle`) and writes the partition
/// grouped by bin into the flat `arena`, with bin j occupying
/// [offsets[j], offsets[j+1]). Bin sizes differ by at most one, and bin j's
/// member order is the historical round-robin deal order
/// (perm[j], perm[j+bins], perm[j+2·bins], …) — bit-identical bins to the
/// old shuffle-then-push_back construction, without any per-bin vectors.
inline void random_equal_partition_into(std::span<NodeId> items,
                                        std::size_t bins, RngStream& rng,
                                        std::vector<NodeId>& arena,
                                        std::vector<std::size_t>& offsets) {
  TCAST_CHECK(bins >= 1);
  rng.shuffle(items);
  const std::size_t n = items.size();
  offsets.resize(bins + 1);
  arena.resize(n);
  std::size_t next = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    offsets[b] = next;
    // Bin b holds the round-robin deal positions b, b+bins, b+2·bins, …
    for (std::size_t i = b; i < n; i += bins) arena[next++] = items[i];
  }
  offsets[bins] = n;
}

}  // namespace tcast
