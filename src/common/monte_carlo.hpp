// Monte-Carlo trial driver.
//
// Every figure in the paper is "average of 1000 runs" at each sweep point;
// this driver owns that loop: per-trial independent RNG streams (bit-exact
// results regardless of thread count), parallel fan-out, and merged stats.
//
// The drivers are templates so the per-trial callable is inlined into the
// chunk loop — no std::function dispatch, no per-trial heap allocation (the
// pre-existing std::function overloads remain as thin shims and produce
// bit-identical results; see tests/perf/fastpath_determinism_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tcast {

struct MonteCarloConfig {
  std::uint64_t seed = 0x7ca57ca57ca57ca5ULL;  ///< root seed
  std::uint64_t experiment_id = 0;  ///< namespaces streams between sweeps
  std::size_t trials = 1000;        ///< paper default: 1000 runs/point
  ThreadPool* pool = nullptr;       ///< nullptr = global pool
};

namespace detail {

/// Shared core: fans cfg.trials trials out across the pool, each writing its
/// `metrics` values straight into one flat buffer, then reduces in trial
/// order so the result is bit-identical for any worker count.
template <typename TrialInto>  // void(RngStream&, double* out)
std::vector<RunningStats> run_trials_into(const MonteCarloConfig& cfg,
                                          std::size_t metrics,
                                          TrialInto&& trial) {
  TCAST_CHECK(metrics > 0);
  std::vector<double> values(cfg.trials * metrics, 0.0);
  double* const data = values.data();
  parallel_for(
      cfg.trials,
      [&](std::size_t i) {
        RngStream rng(cfg.seed, trial_stream_id(cfg.experiment_id, i));
        trial(rng, data + i * metrics);
      },
      cfg.pool);
  std::vector<RunningStats> merged(metrics);
  for (std::size_t i = 0; i < cfg.trials; ++i)
    for (std::size_t m = 0; m < metrics; ++m)
      merged[m].add(values[i * metrics + m]);
  return merged;
}

}  // namespace detail

/// Runs cfg.trials independent trials of `trial(rng)` and returns merged
/// statistics of the returned metric.
template <typename Trial>
  requires std::is_invocable_r_v<double, Trial&, RngStream&>
RunningStats run_trials(const MonteCarloConfig& cfg, Trial&& trial) {
  auto merged = detail::run_trials_into(
      cfg, 1,
      [&trial](RngStream& rng, double* out) { out[0] = trial(rng); });
  return merged[0];
}

/// Boolean-outcome variant (accuracy experiments, Fig. 9/10).
template <typename Trial>
  requires std::is_invocable_r_v<bool, Trial&, RngStream&>
Proportion run_bool_trials(const MonteCarloConfig& cfg, Trial&& trial) {
  const RunningStats s = run_trials(
      cfg, [&trial](RngStream& rng) { return trial(rng) ? 1.0 : 0.0; });
  Proportion p;
  // Rebuild the proportion from the mean; counts are exact because the
  // metric is {0,1}-valued.
  const auto successes = static_cast<std::size_t>(s.sum() + 0.5);
  for (std::size_t i = 0; i < s.count(); ++i) p.add(i < successes);
  return p;
}

/// Multi-metric fast path: the trial fills a span of exactly `metrics`
/// doubles; the driver returns one RunningStats per metric, with zero
/// per-trial allocation. Used when a single simulated run yields several
/// figure series (e.g. queries and rounds).
template <typename Trial>
  requires std::is_invocable_v<Trial&, RngStream&, std::span<double>>
std::vector<RunningStats> run_multi_trials(const MonteCarloConfig& cfg,
                                           std::size_t metrics,
                                           Trial&& trial) {
  return detail::run_trials_into(
      cfg, metrics, [&trial, metrics](RngStream& rng, double* out) {
        trial(rng, std::span<double>(out, metrics));
      });
}

/// Multi-metric variant with the original vector-out signature. Pays one
/// scratch vector per trial (the callable's contract requires a real
/// vector); new code should take std::span<double> instead. (A span-taking
/// callable also accepts vector& — the negative clause routes it to the
/// allocation-free overload above.)
template <typename Trial>
  requires(std::is_invocable_v<Trial&, RngStream&, std::vector<double>&> &&
           !std::is_invocable_v<Trial&, RngStream&, std::span<double>>)
std::vector<RunningStats> run_multi_trials(const MonteCarloConfig& cfg,
                                           std::size_t metrics,
                                           Trial&& trial) {
  return detail::run_trials_into(
      cfg, metrics, [&trial, metrics](RngStream& rng, double* out) {
        std::vector<double> scratch(metrics, 0.0);
        trial(rng, scratch);
        for (std::size_t m = 0; m < metrics; ++m) out[m] = scratch[m];
      });
}

/// Type-erased shims (pre-existing API). Results are bit-identical to the
/// templated paths; only the dispatch cost differs.
RunningStats run_trials(const MonteCarloConfig& cfg,
                        const std::function<double(RngStream&)>& trial);
Proportion run_bool_trials(const MonteCarloConfig& cfg,
                           const std::function<bool(RngStream&)>& trial);
std::vector<RunningStats> run_multi_trials(
    const MonteCarloConfig& cfg, std::size_t metrics,
    const std::function<void(RngStream&, std::vector<double>& out)>& trial);

}  // namespace tcast
