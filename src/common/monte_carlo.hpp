// Monte-Carlo trial driver.
//
// Every figure in the paper is "average of 1000 runs" at each sweep point;
// this driver owns that loop: per-trial independent RNG streams (bit-exact
// results regardless of thread count), parallel fan-out, and merged stats.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace tcast {

struct MonteCarloConfig {
  std::uint64_t seed = 0x7ca57ca57ca57ca5ULL;  ///< root seed
  std::uint64_t experiment_id = 0;  ///< namespaces streams between sweeps
  std::size_t trials = 1000;        ///< paper default: 1000 runs/point
  ThreadPool* pool = nullptr;       ///< nullptr = global pool
};

/// Runs cfg.trials independent trials of `trial(rng)` and returns merged
/// statistics of the returned metric.
RunningStats run_trials(const MonteCarloConfig& cfg,
                        const std::function<double(RngStream&)>& trial);

/// Boolean-outcome variant (accuracy experiments, Fig. 9/10).
Proportion run_bool_trials(const MonteCarloConfig& cfg,
                           const std::function<bool(RngStream&)>& trial);

/// Multi-metric variant: the trial fills `out` (size = metric count); the
/// driver returns one RunningStats per metric. Used when a single simulated
/// run yields several figure series (e.g. queries and rounds).
std::vector<RunningStats> run_multi_trials(
    const MonteCarloConfig& cfg, std::size_t metrics,
    const std::function<void(RngStream&, std::vector<double>& out)>& trial);

}  // namespace tcast
