// Fixed-width-bin histogram used for distribution figures (Fig. 11) and for
// diagnostics (per-bin HACK counts in the testbed).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tcast {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width cells; out-of-range samples are
  /// clamped into the first/last cell so mass is never silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  /// Fraction of mass in bin i (0 if empty histogram).
  double density(std::size_t i) const;

  /// Approximate quantile (linear within bins). q in [0, 1].
  double quantile(double q) const;

  /// Renders a horizontal ASCII bar chart, `width` chars for the modal bin.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace tcast
