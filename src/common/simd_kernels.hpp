// SIMD word-set kernels — the vector substrate under NodeSet and the
// abstract tier's sweep hot loops.
//
// Every kernel operates on packed 64-bit membership words (the NodeSet /
// BinAssignment word-image layout) and comes in several implementations:
//
//   kScalar   — the PR 4 reference loops, compiled with vectorization
//               disabled. The ground truth every other variant is
//               differentially tested against.
//   kPortable — the same loops written to auto-vectorize; the fallback on
//               any hardware without explicit SIMD support.
//   kAVX2     — explicit 256-bit x86 paths (VPAND/VPTEST, Mula nibble-LUT
//               popcount).
//   kAVX512   — explicit 512-bit x86 paths (VPTESTMQ, VPOPCNTQ); requires
//               AVX-512 F+BW+VPOPCNTDQ.
//   kNEON     — explicit 128-bit AArch64 paths (CNT + pairwise adds).
//
// Dispatch is resolved at runtime from CPUID (x86) or the target arch
// (AArch64), overridable for tests and triage: programmatically via
// force_level(), or with TCAST_SIMD=scalar|portable|avx2|avx512|neon in the
// environment. All variants are bit-exact for any input — including odd
// word counts that exercise the vector tails — which the kernel property
// suite (tests/common/simd_kernels_test.cpp) and the registry-wide
// differential suite (tests/conformance/simd_differential_test.cpp) lock
// down across every selectable level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcast::simd {

enum class Level : std::uint8_t {
  kScalar,    ///< non-vectorized reference loops
  kPortable,  ///< auto-vectorization-friendly portable loops
  kNEON,      ///< AArch64 128-bit
  kAVX2,      ///< x86 256-bit
  kAVX512,    ///< x86 512-bit (F + BW + VPOPCNTDQ)
};

const char* to_string(Level level);

/// The widest level this CPU supports (always at least kPortable).
Level best_supported();

/// Every level the kernels can run on this CPU, narrowest first. Test
/// suites iterate this to prove all selectable variants agree.
std::vector<Level> supported_levels();

/// The level the kernels currently dispatch to: the forced level if one is
/// set, else the TCAST_SIMD environment override (when valid and
/// supported), else best_supported().
Level active_level();

/// Forces dispatch to `level` (which must be supported — aborts otherwise;
/// consult supported_levels() first). Test hook; also useful to pin a
/// production binary to a known-good path. Not thread-safe against
/// concurrent kernel calls mid-switch: set it before fanning out work.
void force_level(Level level);

/// Clears force_level(), returning to automatic dispatch.
void clear_forced_level();

// ---------------------------------------------------------------------------
// Kernels. `n` counts 64-bit words; callers pass min(len_a, len_b) — a
// shorter image simply has no members beyond its last word. All pointers
// need only natural (8-byte) alignment; the vector paths use unaligned
// loads.

/// Do the two word images share a set bit? (AND != 0, early exit.)
bool words_intersect(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n);

/// popcount(a & b) over n words.
std::size_t words_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n);

/// dst &= ~mask over n words; returns popcount(dst & mask) — how many set
/// bits the ANDNOT actually cleared.
std::size_t words_andnot_count(std::uint64_t* dst, const std::uint64_t* mask,
                               std::size_t n);

/// Batched bin counting — the sweep kernel behind ExactChannel's announce
/// cache: out[i] = popcount(pos & bins[i * words_per_bin ...]) for every
/// bin, counting over min(pos_words, words_per_bin) words. One dispatch for
/// the whole batch.
void bin_intersection_counts(const std::uint64_t* pos, std::size_t pos_words,
                             const std::uint64_t* bins,
                             std::size_t words_per_bin, std::size_t bin_count,
                             std::uint32_t* out);

}  // namespace tcast::simd
