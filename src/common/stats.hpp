// Online statistics (Welford) and summaries for Monte-Carlo aggregation.
#pragma once

#include <cstddef>
#include <limits>
#include <string>

namespace tcast {

/// Numerically stable running mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than 2 samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Human-readable one-liner ("mean=12.3 sd=4.5 n=1000 [2, 40]").
  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fraction estimator with a normal-approximation confidence half-width.
class Proportion {
 public:
  void add(bool success) {
    ++n_;
    if (success) ++successes_;
  }

  std::size_t trials() const { return n_; }
  std::size_t successes() const { return successes_; }
  double value() const {
    return n_ ? static_cast<double>(successes_) / static_cast<double>(n_)
              : 0.0;
  }
  /// 95% normal-approximation half-width.
  double half_width95() const;

 private:
  std::size_t n_ = 0;
  std::size_t successes_ = 0;
};

}  // namespace tcast
