#include "common/simd_kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define TCAST_SIMD_X86 1
#include <cpuid.h>
#include <immintrin.h>
#elif defined(__aarch64__)
#define TCAST_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tcast::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference. Vectorization is explicitly disabled so this stays a
// genuine scalar baseline for the differential suites (and for `TCAST_SIMD=
// scalar` triage) instead of silently compiling into the portable path.
#if defined(__GNUC__) && !defined(__clang__)
#define TCAST_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize")))
#elif defined(__clang__)
#define TCAST_NO_VECTORIZE
#else
#define TCAST_NO_VECTORIZE
#endif

TCAST_NO_VECTORIZE
bool intersect_scalar(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

TCAST_NO_VECTORIZE
std::size_t and_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

TCAST_NO_VECTORIZE
std::size_t andnot_count_scalar(std::uint64_t* dst, const std::uint64_t* mask,
                                std::size_t n) {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    removed += static_cast<std::size_t>(std::popcount(dst[i] & mask[i]));
    dst[i] &= ~mask[i];
  }
  return removed;
}

// ---------------------------------------------------------------------------
// Portable: same loops, written so the auto-vectorizer is free to act (no
// early exit inside the vector body; the intersect splits into whole blocks
// with a reduction OR).

bool intersect_portable(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  constexpr std::size_t kBlock = 8;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < kBlock; ++j) acc |= a[i + j] & b[i + j];
    if (acc != 0) return true;
  }
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

std::size_t and_popcount_portable(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

std::size_t andnot_count_portable(std::uint64_t* dst, const std::uint64_t* mask,
                                  std::size_t n) {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    removed += static_cast<std::size_t>(std::popcount(dst[i] & mask[i]));
    dst[i] &= ~mask[i];
  }
  return removed;
}

#if defined(TCAST_SIMD_X86)
// ---------------------------------------------------------------------------
// AVX2. Unaligned loads throughout — the word images live in std::vector
// storage with no alignment promise beyond 8 bytes.

__attribute__((target("avx2"))) bool intersect_avx2(const std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testz(a, b) == 1  <=>  (a AND b) == 0 — the AND and the test fuse.
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  std::uint64_t acc = 0;
  for (; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

// Mula nibble-LUT popcount: per-byte counts via PSHUFB on both nibbles,
// horizontally summed into four u64 lanes by PSADBW.
__attribute__((target("avx2"))) inline __m256i popcount_epi64_avx2(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) std::size_t and_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_epi64_avx2(_mm256_and_si256(va, vb)));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx2"))) std::size_t andnot_count_avx2(
    std::uint64_t* dst, const std::uint64_t* mask, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    acc = _mm256_add_epi64(acc, popcount_epi64_avx2(_mm256_and_si256(vd, vm)));
    // andnot(m, d) computes (~m) AND d.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(vm, vd));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t removed =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    removed += static_cast<std::size_t>(std::popcount(dst[i] & mask[i]));
    dst[i] &= ~mask[i];
  }
  return removed;
}

// ---------------------------------------------------------------------------
// AVX-512 (F + BW + VPOPCNTDQ — the native 64-bit lane popcount).

#define TCAST_AVX512_TARGET "avx512f,avx512bw,avx512vpopcntdq"

// d & ~m as a ternary-logic op (truth-table imm 0x30 = A & ~B). GCC 12's
// _mm512_andnot_si512 expands through _mm512_undefined_epi32, whose fake
// "uninitialized" register trips -Wuninitialized under -Werror; pternlog
// has a clean expansion.
__attribute__((target(TCAST_AVX512_TARGET))) inline __m512i andnot_512(
    __m512i d, __m512i m) {
  return _mm512_ternarylogic_epi64(d, m, m, 0x30);
}

// Horizontal u64 sum; _mm512_reduce_add_epi64 has the same
// _mm256_undefined_si256 problem, so spill and add.
__attribute__((target(TCAST_AVX512_TARGET))) inline std::uint64_t sum_lanes_512(
    __m512i v) {
  std::uint64_t lanes[8];
  _mm512_storeu_si512(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

__attribute__((target(TCAST_AVX512_TARGET))) bool intersect_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return true;
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return true;
  }
  return false;
}

__attribute__((target(TCAST_AVX512_TARGET))) std::size_t and_popcount_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  return static_cast<std::size_t>(sum_lanes_512(acc));
}

// Batched bin counts for the dominant two-word geometry (universe ≤ 128,
// words_per_bin == 2): four bins per 512-bit lane. AND against the positive
// pair replicated 4×, per-word popcount, fold each pair's halves together,
// then narrow the four even lanes to u32 in one store.
__attribute__((target(TCAST_AVX512_TARGET))) void pair_counts_avx512(
    const std::uint64_t* pos, const std::uint64_t* bins, std::size_t bin_count,
    std::uint32_t* out) {
  // maskz_ forms with a full mask: the plain intrinsics expand through
  // _mm512_undefined_epi32, which trips -Wuninitialized on GCC 12.
  const __m512i vpos = _mm512_maskz_broadcast_i32x4(
      static_cast<__mmask16>(-1),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(pos)));
  std::size_t b = 0;
  for (; b + 4 <= bin_count; b += 4) {
    const __m512i v = _mm512_loadu_si512(bins + 2 * b);
    const __m512i cnt = _mm512_popcnt_epi64(_mm512_and_si512(v, vpos));
    // Swap the 64-bit halves of each 128-bit pair and add: both halves of
    // a pair now hold that bin's total. Spill and pick the even lanes —
    // the lane-compacting intrinsics expand through GCC 12's fake
    // "undefined" registers and trip -Wuninitialized (see sum_lanes_512).
    const __m512i sum = _mm512_add_epi64(
        cnt, _mm512_maskz_shuffle_epi32(static_cast<__mmask16>(-1), cnt,
                                        _MM_PERM_BADC));
    std::uint64_t lanes[8];
    _mm512_storeu_si512(lanes, sum);
    out[b] = static_cast<std::uint32_t>(lanes[0]);
    out[b + 1] = static_cast<std::uint32_t>(lanes[2]);
    out[b + 2] = static_cast<std::uint32_t>(lanes[4]);
    out[b + 3] = static_cast<std::uint32_t>(lanes[6]);
  }
  for (; b < bin_count; ++b) {
    const std::uint64_t* bin = bins + 2 * b;
    out[b] = static_cast<std::uint32_t>(std::popcount(pos[0] & bin[0]) +
                                        std::popcount(pos[1] & bin[1]));
  }
}

__attribute__((target(TCAST_AVX512_TARGET))) std::size_t andnot_count_avx512(
    std::uint64_t* dst, const std::uint64_t* mask, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = _mm512_loadu_si512(dst + i);
    const __m512i vm = _mm512_loadu_si512(mask + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(vd, vm)));
    _mm512_storeu_si512(dst + i, andnot_512(vd, vm));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i vd = _mm512_maskz_loadu_epi64(tail, dst + i);
    const __m512i vm = _mm512_maskz_loadu_epi64(tail, mask + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(vd, vm)));
    _mm512_mask_storeu_epi64(dst + i, tail, andnot_512(vd, vm));
  }
  return static_cast<std::size_t>(sum_lanes_512(acc));
}
#endif  // TCAST_SIMD_X86

#if defined(TCAST_SIMD_NEON)
// ---------------------------------------------------------------------------
// AArch64 NEON: 128-bit lanes, CNT (per-byte popcount) + pairwise widening
// adds up to u64.

bool intersect_neon(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint64x2_t both = vandq_u64(va, vb);
    if ((vgetq_lane_u64(both, 0) | vgetq_lane_u64(both, 1)) != 0) return true;
  }
  return i < n && (a[i] & b[i]) != 0;
}

inline std::uint64_t popcount_u64x2(uint64x2_t v) {
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(bytes);
}

std::size_t and_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += popcount_u64x2(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  if (i < n) total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

std::size_t andnot_count_neon(std::uint64_t* dst, const std::uint64_t* mask,
                              std::size_t n) {
  std::size_t removed = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vd = vld1q_u64(dst + i);
    const uint64x2_t vm = vld1q_u64(mask + i);
    removed += popcount_u64x2(vandq_u64(vd, vm));
    // bic(d, m) computes d AND ~m.
    vst1q_u64(dst + i, vbicq_u64(vd, vm));
  }
  if (i < n) {
    removed += static_cast<std::size_t>(std::popcount(dst[i] & mask[i]));
    dst[i] &= ~mask[i];
  }
  return removed;
}
#endif  // TCAST_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.

#if defined(TCAST_SIMD_X86)
// XGETBV via inline asm: the _xgetbv intrinsic needs the whole function
// compiled with the xsave target. Only called after the OSXSAVE CPUID bit
// confirmed the instruction is enabled.
std::uint64_t read_xcr0() {
  std::uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0u));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

bool cpu_has_avx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  if ((ebx & bit_AVX2) == 0) return false;
  // AVX2 also needs OS support for YMM state (XGETBV bits 1|2).
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  if ((ecx & bit_OSXSAVE) == 0) return false;
  return (read_xcr0() & 0x6) == 0x6;
}

bool cpu_has_avx512() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  if ((ebx & bit_AVX512F) == 0 || (ebx & bit_AVX512BW) == 0) return false;
  if ((ecx & bit_AVX512VPOPCNTDQ) == 0) return false;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  if ((ecx & bit_OSXSAVE) == 0) return false;
  // ZMM state: XMM | YMM | opmask | ZMM_Hi256 | Hi16_ZMM.
  return (read_xcr0() & 0xe6) == 0xe6;
}
#endif

Level detect_best() {
#if defined(TCAST_SIMD_X86)
  if (cpu_has_avx512()) return Level::kAVX512;
  if (cpu_has_avx2()) return Level::kAVX2;
  return Level::kPortable;
#elif defined(TCAST_SIMD_NEON)
  return Level::kNEON;
#else
  return Level::kPortable;
#endif
}

bool parse_level(const char* text, Level* out) {
  if (text == nullptr) return false;
  const struct {
    const char* name;
    Level level;
  } kNames[] = {
      {"scalar", Level::kScalar},   {"portable", Level::kPortable},
      {"neon", Level::kNEON},       {"avx2", Level::kAVX2},
      {"avx512", Level::kAVX512},
  };
  for (const auto& entry : kNames) {
    if (std::strcmp(text, entry.name) == 0) {
      *out = entry.level;
      return true;
    }
  }
  return false;
}

bool level_supported(Level level) {
  if (level == Level::kScalar || level == Level::kPortable) return true;
  for (Level supported : supported_levels()) {
    if (supported == level) return true;
  }
  return false;
}

// The automatic choice (env override when valid, else widest supported),
// computed once.
Level resolve_auto_level() {
  Level level = detect_best();
  Level from_env;
  if (parse_level(std::getenv("TCAST_SIMD"), &from_env) &&
      level_supported(from_env)) {
    level = from_env;
  }
  return level;
}

// kAuto sentinel: no force in effect.
constexpr int kAuto = -1;
std::atomic<int> g_forced{kAuto};

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kPortable:
      return "portable";
    case Level::kNEON:
      return "neon";
    case Level::kAVX2:
      return "avx2";
    case Level::kAVX512:
      return "avx512";
  }
  return "?";
}

Level best_supported() {
  static const Level kBest = detect_best();
  return kBest;
}

std::vector<Level> supported_levels() {
  std::vector<Level> levels = {Level::kScalar, Level::kPortable};
#if defined(TCAST_SIMD_X86)
  static const bool kAvx2 = cpu_has_avx2();
  static const bool kAvx512 = cpu_has_avx512();
  if (kAvx2) levels.push_back(Level::kAVX2);
  if (kAvx512) levels.push_back(Level::kAVX512);
#elif defined(TCAST_SIMD_NEON)
  levels.push_back(Level::kNEON);
#endif
  return levels;
}

Level active_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != kAuto) return static_cast<Level>(forced);
  static const Level kResolved = resolve_auto_level();
  return kResolved;
}

void force_level(Level level) {
  TCAST_CHECK_MSG(level_supported(level),
                  "forced SIMD level not supported on this CPU");
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_level() {
  g_forced.store(kAuto, std::memory_order_relaxed);
}

bool words_intersect(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) {
  switch (active_level()) {
    case Level::kScalar:
      return intersect_scalar(a, b, n);
#if defined(TCAST_SIMD_X86)
    case Level::kAVX2:
      return intersect_avx2(a, b, n);
    case Level::kAVX512:
      return intersect_avx512(a, b, n);
#endif
#if defined(TCAST_SIMD_NEON)
    case Level::kNEON:
      return intersect_neon(a, b, n);
#endif
    default:
      return intersect_portable(a, b, n);
  }
}

std::size_t words_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  switch (active_level()) {
    case Level::kScalar:
      return and_popcount_scalar(a, b, n);
#if defined(TCAST_SIMD_X86)
    case Level::kAVX2:
      return and_popcount_avx2(a, b, n);
    case Level::kAVX512:
      return and_popcount_avx512(a, b, n);
#endif
#if defined(TCAST_SIMD_NEON)
    case Level::kNEON:
      return and_popcount_neon(a, b, n);
#endif
    default:
      return and_popcount_portable(a, b, n);
  }
}

std::size_t words_andnot_count(std::uint64_t* dst, const std::uint64_t* mask,
                               std::size_t n) {
  switch (active_level()) {
    case Level::kScalar:
      return andnot_count_scalar(dst, mask, n);
#if defined(TCAST_SIMD_X86)
    case Level::kAVX2:
      return andnot_count_avx2(dst, mask, n);
    case Level::kAVX512:
      return andnot_count_avx512(dst, mask, n);
#endif
#if defined(TCAST_SIMD_NEON)
    case Level::kNEON:
      return andnot_count_neon(dst, mask, n);
#endif
    default:
      return andnot_count_portable(dst, mask, n);
  }
}

void bin_intersection_counts(const std::uint64_t* pos, std::size_t pos_words,
                             const std::uint64_t* bins,
                             std::size_t words_per_bin, std::size_t bin_count,
                             std::uint32_t* out) {
  const std::size_t n =
      pos_words < words_per_bin ? pos_words : words_per_bin;
  // Tiny images (n ≤ 2 covers every universe up to 128 nodes): one or two
  // hardware popcounts per bin beat any vector variant's setup, so take a
  // direct loop regardless of the dispatch level. Exact counts either way —
  // every level returns bit-identical results, so forcing a level for
  // differential tests still exercises the wide kernels via larger images.
  if (n == 1) {
    for (std::size_t b = 0; b < bin_count; ++b) {
      out[b] = static_cast<std::uint32_t>(
          std::popcount(pos[0] & bins[b * words_per_bin]));
    }
    return;
  }
  if (n == 2) {
#if defined(TCAST_SIMD_X86)
    // Dense pair geometry (stride == 2) gets the dedicated wide kernel when
    // the dispatch level allows; identical exact counts either way.
    if (words_per_bin == 2 && active_level() == Level::kAVX512) {
      pair_counts_avx512(pos, bins, bin_count, out);
      return;
    }
#endif
    for (std::size_t b = 0; b < bin_count; ++b) {
      const std::uint64_t* bin = bins + b * words_per_bin;
      out[b] = static_cast<std::uint32_t>(std::popcount(pos[0] & bin[0]) +
                                          std::popcount(pos[1] & bin[1]));
    }
    return;
  }
  // Dispatch once for the whole batch, not per bin.
  const Level level = active_level();
  switch (level) {
    case Level::kScalar:
      for (std::size_t b = 0; b < bin_count; ++b) {
        out[b] = static_cast<std::uint32_t>(
            and_popcount_scalar(pos, bins + b * words_per_bin, n));
      }
      return;
#if defined(TCAST_SIMD_X86)
    case Level::kAVX2:
      for (std::size_t b = 0; b < bin_count; ++b) {
        out[b] = static_cast<std::uint32_t>(
            and_popcount_avx2(pos, bins + b * words_per_bin, n));
      }
      return;
    case Level::kAVX512:
      for (std::size_t b = 0; b < bin_count; ++b) {
        out[b] = static_cast<std::uint32_t>(
            and_popcount_avx512(pos, bins + b * words_per_bin, n));
      }
      return;
#endif
#if defined(TCAST_SIMD_NEON)
    case Level::kNEON:
      for (std::size_t b = 0; b < bin_count; ++b) {
        out[b] = static_cast<std::uint32_t>(
            and_popcount_neon(pos, bins + b * words_per_bin, n));
      }
      return;
#endif
    default:
      for (std::size_t b = 0; b < bin_count; ++b) {
        out[b] = static_cast<std::uint32_t>(
            and_popcount_portable(pos, bins + b * words_per_bin, n));
      }
      return;
  }
}

}  // namespace tcast::simd
