#include "common/monte_carlo.hpp"

namespace tcast {

// The std::function shims forward into the templated fast path; the only
// difference is the type-erased call per trial. Kept out-of-line so existing
// callers that pass std::function lvalues keep linking against a stable API.

RunningStats run_trials(const MonteCarloConfig& cfg,
                        const std::function<double(RngStream&)>& trial) {
  return run_trials<const std::function<double(RngStream&)>&>(cfg, trial);
}

Proportion run_bool_trials(const MonteCarloConfig& cfg,
                           const std::function<bool(RngStream&)>& trial) {
  return run_bool_trials<const std::function<bool(RngStream&)>&>(cfg, trial);
}

std::vector<RunningStats> run_multi_trials(
    const MonteCarloConfig& cfg, std::size_t metrics,
    const std::function<void(RngStream&, std::vector<double>& out)>& trial) {
  return run_multi_trials<
      const std::function<void(RngStream&, std::vector<double>&)>&>(
      cfg, metrics, trial);
}

}  // namespace tcast
