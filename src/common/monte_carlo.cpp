#include "common/monte_carlo.hpp"

#include "common/check.hpp"

namespace tcast {

RunningStats run_trials(const MonteCarloConfig& cfg,
                        const std::function<double(RngStream&)>& trial) {
  auto multi = run_multi_trials(
      cfg, 1, [&trial](RngStream& rng, std::vector<double>& out) {
        out[0] = trial(rng);
      });
  return multi[0];
}

Proportion run_bool_trials(const MonteCarloConfig& cfg,
                           const std::function<bool(RngStream&)>& trial) {
  const RunningStats s = run_trials(
      cfg, [&trial](RngStream& rng) { return trial(rng) ? 1.0 : 0.0; });
  Proportion p;
  // Rebuild the proportion from the mean; counts are exact because the
  // metric is {0,1}-valued.
  const auto successes =
      static_cast<std::size_t>(s.sum() + 0.5);
  for (std::size_t i = 0; i < s.count(); ++i) p.add(i < successes);
  return p;
}

std::vector<RunningStats> run_multi_trials(
    const MonteCarloConfig& cfg, std::size_t metrics,
    const std::function<void(RngStream&, std::vector<double>& out)>& trial) {
  TCAST_CHECK(metrics > 0);
  // Collect per-trial values first, then reduce in trial order, so the
  // result is bit-identical for any worker count.
  std::vector<double> values(cfg.trials * metrics, 0.0);
  parallel_for(
      cfg.trials,
      [&](std::size_t i) {
        RngStream rng(cfg.seed, trial_stream_id(cfg.experiment_id, i));
        std::vector<double> out(metrics, 0.0);
        trial(rng, out);
        for (std::size_t m = 0; m < metrics; ++m)
          values[i * metrics + m] = out[m];
      },
      cfg.pool);
  std::vector<RunningStats> merged(metrics);
  for (std::size_t i = 0; i < cfg.trials; ++i)
    for (std::size_t m = 0; m < metrics; ++m)
      merged[m].add(values[i * metrics + m]);
  return merged;
}

}  // namespace tcast
