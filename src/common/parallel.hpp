// Minimal thread pool + parallel_for for Monte-Carlo fan-out.
//
// The experiments are embarrassingly parallel across trials: each trial owns
// an independent RNG stream, so results are bit-identical regardless of the
// worker count (including 1). The pool uses static chunking — trials are
// near-uniform cost, so work stealing would buy nothing here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcast {

/// Fixed-size worker pool. Tasks are void() closures.
class ThreadPool {
 public:
  /// `workers == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues a task; tasks may not enqueue further tasks and then block on
  /// them (no nested-wait support — not needed for trial fan-out).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [0, n), chunked across the pool. Blocks until done.
/// body must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

}  // namespace tcast
