// Minimal thread pool + parallel_for for Monte-Carlo fan-out.
//
// The experiments are embarrassingly parallel across trials: each trial owns
// an independent RNG stream, so results are bit-identical regardless of the
// worker count (including 1). The pool uses static chunking — trials are
// near-uniform cost, so work stealing would buy nothing here.
//
// Two execution paths:
//  * submit()/wait_idle() — general void() closures, kept for irregular
//    work. The pending set is a reusable vector + cursor (capacity persists
//    across drain cycles), not a queue of individually heap-allocated nodes.
//  * run_batch() — the hot path under parallel_for: ONE type-erased callable
//    (a raw function pointer + context, no std::function, no allocation)
//    shared by every worker, with chunk indices handed out through an atomic
//    counter. The calling thread participates in draining the batch.
//
// Nested waiting is a hard error, not a documented footgun: wait_idle() and
// run_batch() called from a worker thread of the same pool TCAST_CHECK-fail
// loudly instead of deadlocking. parallel_for called from a worker degrades
// to an inline sequential loop (same results — chunking never affects
// observable output).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tcast {

/// Fixed-size worker pool. Tasks are void() closures.
class ThreadPool {
 public:
  /// Type-erased index callable used by run_batch: fn(ctx, index).
  using BatchFn = void (*)(void*, std::size_t);

  /// `workers == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues a task. Tasks may submit further tasks, but must never block
  /// on them: wait_idle() from a worker thread fails a TCAST_CHECK.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Calling this from one
  /// of this pool's own worker threads would deadlock (the worker cannot
  /// drain the work it is waiting on), so it fails a TCAST_CHECK instead.
  void wait_idle();

  /// Runs fn(ctx, i) for every i in [0, count), fanned out across the
  /// workers plus the calling thread; blocks until the batch completes.
  /// No per-index or per-chunk heap allocation. Concurrent run_batch calls
  /// from distinct external threads serialize. Calling from one of this
  /// pool's workers fails a TCAST_CHECK (prefer parallel_for, which runs
  /// inline in that case).
  void run_batch(std::size_t count, BatchFn fn, void* ctx);

  /// True iff the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// True iff the calling thread is currently executing batch work for this
  /// pool: a worker thread, or the external caller inside run_batch() (the
  /// caller participates in draining, so a batch body can run on it).
  /// parallel_for uses this to degrade to an inline loop instead of
  /// re-entering the pool.
  bool in_batch_on_this_thread() const;

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Claims and runs batch indices until the batch is exhausted; returns how
  /// many this thread completed.
  std::size_t drain_batch(BatchFn fn, void* ctx, std::size_t end);
  bool batch_pending_locked() const {
    return batch_fn_ != nullptr &&
           batch_next_.load(std::memory_order_relaxed) < batch_end_;
  }

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  // Reusable pending-task buffer: drained front-to-back via task_head_, then
  // cleared keeping capacity — no per-node allocation churn under load.
  std::vector<std::function<void()>> tasks_;
  std::size_t task_head_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;

  // Active-batch state. batch_mu_ serializes external run_batch callers;
  // the fields below are written under mu_ and read by workers either under
  // mu_ (snapshot) or via the atomic cursor.
  std::mutex batch_mu_;
  BatchFn batch_fn_ = nullptr;
  void* batch_ctx_ = nullptr;
  std::atomic<std::size_t> batch_next_{0};
  std::size_t batch_end_ = 0;
  std::size_t batch_done_ = 0;
  std::size_t batch_workers_ = 0;  ///< workers currently inside drain_batch

  std::vector<std::thread> threads_;
};

/// Runs body(i) for i in [0, n), chunked across the pool. Blocks until done.
/// body must be safe to invoke concurrently for distinct i. The callable is
/// invoked directly (inlined into the chunk loop) — no std::function, no
/// heap allocation. Called from a pool worker thread, runs inline.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, ThreadPool* pool = nullptr) {
  if (n == 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t workers = pool->worker_count();
  if (workers <= 1 || n == 1 || pool->in_batch_on_this_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  using BodyT = std::remove_reference_t<Body>;
  struct Ctx {
    BodyT* body;
    std::size_t n;
    std::size_t chunk;
  } ctx{&body, n, chunk};
  pool->run_batch(
      chunks,
      [](void* raw, std::size_t c) {
        auto& x = *static_cast<Ctx*>(raw);
        const std::size_t lo = c * x.chunk;
        const std::size_t hi = std::min(x.n, lo + x.chunk);
        for (std::size_t i = lo; i < hi; ++i) (*x.body)(i);
      },
      &ctx);
}

/// Type-erased compatibility shim (pre-existing API); prefer the template,
/// which avoids the per-index indirect call.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool);

}  // namespace tcast
