// ChaosEngine: randomized fault campaigns with record/replay.
//
// The chaos subsystem closes the loop the fault layer opened in PR 3:
//
//   1. a ChaosScenario pins one fully-seeded chaos session — algorithm,
//      instance (n, x, t, model), tier (exact or packet), FaultPlan, retry
//      policy — and round-trips through a one-line spec;
//   2. run_session executes it under a conformance CheckedChannel with
//      every invariant monitor online, records the injected faults as a
//      FaultTrace, and reports any violations;
//   3. replay_session re-runs a (scenario, trace) pair through a
//      TraceChannel — no fault RNG — reproducing the recorded schedule
//      bit-identically; on the packet tier the same trace drives
//      frame-level crash/reboot/loss through ChannelFaultControl;
//   4. run_campaign fans thousands of sessions across the registry ×
//      tier × fault-plan grid on the thread pool and collects every
//      violating (scenario, trace) pair for the shrinker.
//
// A correct engine reports zero violations across the whole grid (spurious
// -activity plans are excluded: interference can legitimately manufacture a
// false "yes", so no monitor can soundly reject it). The
// `break_counts_two_gate` knob re-opens the engine's known loss-soundness
// hole (EngineOptions::unsafe_counts_two_despite_loss) so shrinker tests
// have a real bug to minimize.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.hpp"
#include "conformance/checked_channel.hpp"
#include "core/round_engine.hpp"
#include "faults/fault_plan.hpp"
#include "faults/fault_trace.hpp"
#include "group/query_channel.hpp"

namespace tcast::chaos {

/// Which channel stack resolves the queries.
enum class Tier : std::uint8_t {
  kExact,   ///< ExactChannel (abstract tier)
  kPacket,  ///< PacketChannel (packet tier; frame-level fault determinism)
};

const char* to_string(Tier t);
std::optional<Tier> parse_tier(std::string_view text);

/// One fully-seeded chaos session. A pure value: the same scenario always
/// produces the same run, fault schedule and verdict.
struct ChaosScenario {
  std::string algorithm = "2tbins";
  std::size_t n = 16;  ///< participants
  std::size_t x = 0;   ///< real positives (ground truth)
  std::size_t t = 1;   ///< threshold queried
  group::CollisionModel model = group::CollisionModel::kOnePlus;
  Tier tier = Tier::kExact;
  faults::FaultPlan plan;
  core::RetryPolicy retry;
  /// Root seed: stream 0 draws the positive set, stream 1 the channel
  /// randomness, stream 2 the algorithm's binning.
  std::uint64_t seed = 1;
  /// TEST-ONLY: run the engine with its loss-soundness gate disabled
  /// (EngineOptions::unsafe_counts_two_despite_loss).
  bool break_counts_two_gate = false;
  /// Packet tier only: host the radio world on the parallel LP kernel
  /// (PacketChannel::Config::lp_hosted) instead of the scalar single-queue
  /// path. With interference off the two paths are bit-identical, so a
  /// trace recorded on either replays faithfully on the other.
  bool lp_hosted = false;

  bool ground_truth() const { return x >= t; }

  /// One-line spec, `;`-separated `key=value` tokens (the plan and retry
  /// specs nest commas/colons, hence the outer `;`), e.g.
  ///   "algo=2tbins;n=24;x=8;t=8;model=2+;tier=exact;seed=5;plan=iid=0.05,seed=7"
  /// `parse(spec())` reproduces the scenario exactly.
  std::string spec() const;
  static std::optional<ChaosScenario> parse(std::string_view text);

  bool operator==(const ChaosScenario&) const = default;
};

/// The verdict of one session (recorded or replayed).
struct SessionReport {
  ChaosScenario scenario;
  core::ThresholdOutcome outcome;
  /// The injected-fault schedule: recorded from the FaultyChannel on a live
  /// run, re-recorded from the TraceChannel's own log on a replay — equal
  /// on both iff the replay was faithful.
  faults::FaultTrace trace;
  std::vector<conformance::Violation> violations;
  /// Next raw RNG word of the algorithm stream after the run — a replay
  /// that consumed the identical draw sequence probes identically.
  std::uint64_t algo_rng_probe = 0;
  /// Same probe for the channel stream (exact tier only; the packet tier's
  /// randomness lives inside its simulator, probed as 0).
  std::uint64_t channel_rng_probe = 0;

  bool ok() const { return violations.empty(); }
  bool false_yes() const {
    return outcome.decision && !scenario.ground_truth();
  }
  bool false_no() const {
    return !outcome.decision && scenario.ground_truth();
  }
};

/// Executes `scenario` live: FaultyChannel draws the faults from
/// scenario.plan, every conformance monitor is online, and the injected
/// schedule is recorded as a replayable FaultTrace.
SessionReport run_session(const ChaosScenario& scenario);

/// Re-executes `scenario` with `trace` replayed verbatim through a
/// TraceChannel (zero fault RNG consumed). On the stack that recorded the
/// trace this is bit-identical: same outcome, query count, fault log, and
/// RNG probes.
SessionReport replay_session(const ChaosScenario& scenario,
                             const faults::FaultTrace& trace);

/// The campaign's fault-plan axis: clean, i.i.d. and bursty loss, capture
/// downgrade, crash and crash+reboot mixes. Spurious activity is excluded
/// (see file comment). `seed` salts the plans' fault streams.
std::vector<faults::FaultPlan> default_plan_grid(std::uint64_t seed);

struct CampaignConfig {
  /// Algorithms to drive; empty = every non-oracle registry algorithm.
  std::vector<std::string> algorithms;
  std::vector<Tier> tiers = {Tier::kExact, Tier::kPacket};
  /// Fault plans; empty = default_plan_grid(seed).
  std::vector<faults::FaultPlan> plans;
  /// Sessions per (algorithm, tier, plan) cell.
  std::size_t sessions_per_cell = 8;
  std::uint64_t seed = 1;
  core::RetryPolicy retry;
  bool break_counts_two_gate = false;
  /// Instance-size caps: the exact tier is cheap, the packet tier
  /// co-simulates a radio world per query and must stay small.
  std::size_t max_exact_n = 48;
  std::size_t max_packet_n = 10;
  /// Worker pool; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Run every packet-tier session on the LP-hosted kernel path
  /// (ChaosScenario::lp_hosted). The nightly parity leg drives the same
  /// campaign with this on and off and compares the results.
  bool lp_hosted_packet = false;
};

struct CampaignResult {
  std::size_t sessions = 0;
  std::size_t faults_injected = 0;  ///< total recorded fault events
  std::size_t false_yes = 0;
  std::size_t false_no = 0;
  /// Every violating session, scenario + recorded trace — the shrinker's
  /// input. Deterministic order (by scenario index), whatever the pool.
  std::vector<SessionReport> violating;
};

/// Runs the full grid. The scenario list is a pure function of `cfg`
/// (instance sizes drawn from a dedicated stream of cfg.seed), and sessions
/// fan out over the pool via run_batch; results are bit-identical whatever
/// the worker count.
CampaignResult run_campaign(const CampaignConfig& cfg);

/// Campaign preset over the counting portfolio: every count:* adapter in
/// the registry, both tiers, and a plan axis that exercises the estimators'
/// interesting failure modes — lying silence (i.i.d. and bursty loss) and
/// mote death (crash, crash+reboot) — plus the clean control cell.
CampaignConfig counting_campaign_config(std::uint64_t seed);

}  // namespace tcast::chaos
