#include "chaos/shrinker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tcast::chaos {
namespace {

/// One ddmin pass over trace.events: returns true when anything was
/// removed. `probes` counts predicate calls.
bool ddmin_events(const ChaosScenario& sc, faults::FaultTrace& trace,
                  const TracePredicate& pred, std::size_t& probes) {
  bool removed_any = false;
  std::size_t granularity = 2;
  while (trace.events.size() >= 2) {
    const std::size_t n = trace.events.size();
    const std::size_t chunks = std::min(granularity, n);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    bool removed = false;
    for (std::size_t c = 0; c < chunks && c * chunk < trace.events.size();
         ++c) {
      // Candidate: the trace with chunk c deleted (complement kept).
      faults::FaultTrace candidate = trace;
      const std::size_t lo = c * chunk;
      const std::size_t hi =
          std::min(candidate.events.size(), lo + chunk);
      candidate.events.erase(candidate.events.begin() + lo,
                             candidate.events.begin() + hi);
      ++probes;
      if (pred(sc, candidate)) {
        trace = std::move(candidate);
        removed = true;
        removed_any = true;
        // Stay at this granularity; chunk boundaries shifted, restart it.
        break;
      }
    }
    if (removed) {
      granularity = std::max<std::size_t>(2, granularity - 1);
      continue;
    }
    if (chunks >= n) break;  // 1-minimal: no single event is removable
    granularity = std::min(n, granularity * 2);
  }
  // Size 1: try the empty trace once (a scenario whose stack violates with
  // no faults at all should shrink to zero events).
  if (trace.events.size() == 1) {
    faults::FaultTrace candidate = trace;
    candidate.events.clear();
    ++probes;
    if (pred(sc, candidate)) {
      trace = std::move(candidate);
      removed_any = true;
    }
  }
  return removed_any;
}

/// Greedily pulls every event's at_query down toward its predecessor (the
/// first event toward 0), shrinking the query prefix a reproducer must
/// run. Events are kept sorted by at_query. Returns true on any change.
bool compact_queries(const ChaosScenario& sc, faults::FaultTrace& trace,
                     const TracePredicate& pred, std::size_t& probes) {
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const faults::FaultEvent& a,
                      const faults::FaultEvent& b) {
                     return a.at_query < b.at_query;
                   });
  bool changed = false;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const QueryCount floor =
        i == 0 ? 0 : trace.events[i - 1].at_query;
    if (trace.events[i].at_query <= floor) continue;
    faults::FaultTrace candidate = trace;
    candidate.events[i].at_query = floor;
    ++probes;
    if (pred(sc, candidate)) {
      trace = std::move(candidate);
      changed = true;
      continue;
    }
    // Full pull failed; try one step down (cheap, often enough to close a
    // gap of exactly one).
    if (trace.events[i].at_query > floor + 1) {
      candidate = trace;
      --candidate.events[i].at_query;
      ++probes;
      if (pred(sc, candidate)) {
        trace = std::move(candidate);
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

TracePredicate violates_any() {
  return [](const ChaosScenario& sc, const faults::FaultTrace& trace) {
    return !replay_session(sc, trace).violations.empty();
  };
}

TracePredicate violates_false_yes() {
  return [](const ChaosScenario& sc, const faults::FaultTrace& trace) {
    return replay_session(sc, trace).false_yes();
  };
}

std::string ShrinkResult::replay_spec() const {
  return scenario.spec() + " trace=" + trace.to_spec();
}

std::string ShrinkResult::regression_stanza(
    std::string_view test_name) const {
  std::string s;
  s += "TEST(ChaosRegressions, " + std::string(test_name) + ") {\n";
  s += "  const auto sc = tcast::chaos::ChaosScenario::parse(\n";
  s += "      \"" + scenario.spec() + "\");\n";
  s += "  const auto trace = tcast::faults::FaultTrace::parse(\n";
  s += "      \"" + trace.to_spec() + "\");\n";
  s += "  ASSERT_TRUE(sc.has_value());\n";
  s += "  ASSERT_TRUE(trace.has_value());\n";
  s += "  const auto rep = tcast::chaos::replay_session(*sc, *trace);\n";
  s += "  EXPECT_FALSE(rep.violations.empty());\n";
  s += "}\n";
  return s;
}

ShrinkResult shrink(const ChaosScenario& scenario, faults::FaultTrace trace,
                    const TracePredicate& pred) {
  ShrinkResult result;
  result.scenario = scenario;
  result.original_events = trace.events.size();
  ++result.probes;
  TCAST_CHECK_MSG(pred(scenario, trace),
                  "shrink: predicate does not hold on the input trace");
  bool changed = true;
  while (changed) {
    changed = ddmin_events(scenario, trace, pred, result.probes);
    changed = compact_queries(scenario, trace, pred, result.probes) ||
              changed;
  }
  result.trace = std::move(trace);
  return result;
}

}  // namespace tcast::chaos
