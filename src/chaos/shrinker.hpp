// Delta-debugging shrinker for violating fault traces.
//
// A chaos campaign hands back (scenario, trace) pairs that tripped a
// conformance monitor. Those traces are long — hundreds of events from
// thousands of queries — and almost all of it is noise. The shrinker
// minimizes a trace while preserving the failure:
//
//   1. ddmin over the event list (Zeller's delta debugging): drop
//      complement chunks at doubling granularity until the trace is
//      1-minimal — removing any single event makes the violation vanish;
//   2. query-index compaction: greedily pull each event's at_query down
//      toward its predecessor, shrinking the query prefix the reproducer
//      has to execute;
//   3. iterate 1–2 to a fixed point.
//
// The predicate re-runs the scenario under replay_session each probe, so
// whatever monitors fired originally judge every candidate. The result is
// a one-line replay spec plus a ready-to-paste regression-test stanza —
// the chaos pipeline's terminal artifact.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "chaos/chaos_engine.hpp"
#include "faults/fault_trace.hpp"

namespace tcast::chaos {

/// Judges whether a candidate trace still reproduces the failure. Must be
/// deterministic (replay_session is).
using TracePredicate =
    std::function<bool(const ChaosScenario&, const faults::FaultTrace&)>;

/// Any conformance violation survives the replay.
TracePredicate violates_any();

/// A wrong final verdict survives — specifically a false "yes" (decision
/// true with ground truth below threshold), the soundness hole the
/// `break_counts_two_gate` engine variant re-opens.
TracePredicate violates_false_yes();

struct ShrinkResult {
  ChaosScenario scenario;
  faults::FaultTrace trace;       ///< the minimized reproducer
  std::size_t original_events = 0;
  std::size_t probes = 0;         ///< predicate evaluations spent

  /// One line that pins the reproducer: "<scenario spec> trace=<trace spec>".
  std::string replay_spec() const;

  /// A ready-to-paste GTest stanza replaying the reproducer and asserting
  /// the violation still fires.
  std::string regression_stanza(std::string_view test_name) const;
};

/// Minimizes `trace` under `pred` (which must hold for the input pair —
/// checked). Deterministic: same inputs, same minimized trace.
ShrinkResult shrink(const ChaosScenario& scenario, faults::FaultTrace trace,
                    const TracePredicate& pred);

}  // namespace tcast::chaos
