#include "chaos/chaos_engine.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "conformance/harness.hpp"
#include "core/registry.hpp"
#include "faults/faulty_channel.hpp"
#include "faults/trace_channel.hpp"
#include "group/exact_channel.hpp"
#include "group/packet_channel.hpp"

namespace tcast::chaos {
namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const auto pos = text.find(sep);
    parts.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return parts;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

/// Gives an oracle view (and a forwarded ChannelFaultControl) to a channel
/// that lacks one — the packet tier. Ground truth is the positive vector
/// the channel was built from; forwarding fault_control() is what lets the
/// fault layer above reach the packet tier's frame-level hooks through
/// this decorator.
class OracleAdapter final : public group::QueryChannel {
 public:
  OracleAdapter(group::QueryChannel& inner, std::vector<bool> positive)
      : QueryChannel(inner.model()),
        inner_(&inner),
        positive_(std::move(positive)) {}

  bool lossy() const override { return inner_->lossy(); }
  group::ChannelFaultControl* fault_control() override {
    return inner_->fault_control();
  }

  std::optional<std::size_t> oracle_positive_count(
      std::span<const NodeId> nodes) const override {
    std::size_t count = 0;
    for (const NodeId id : nodes)
      if (positive_.at(static_cast<std::size_t>(id))) ++count;
    return count;
  }

 protected:
  void do_announce(const group::BinAssignment& a) override {
    inner_->announce(a);
  }
  group::BinQueryResult do_query_bin(const group::BinAssignment& a,
                                     std::size_t idx) override {
    return inner_->query_bin(a, idx);
  }
  group::BinQueryResult do_query_set(
      std::span<const NodeId> nodes) override {
    return inner_->query_set(nodes);
  }

 private:
  group::QueryChannel* inner_;
  std::vector<bool> positive_;
};

/// run_session / replay_session share one stack; `replay` selects the
/// injector (nullptr = live FaultyChannel drawing from scenario.plan).
SessionReport run_impl(const ChaosScenario& sc,
                       const faults::FaultTrace* replay) {
  const auto* spec = core::find_algorithm(sc.algorithm);
  TCAST_CHECK_MSG(spec != nullptr, "unknown algorithm in ChaosScenario");
  TCAST_CHECK_MSG(!spec->needs_oracle,
                  "oracle baselines are not chaos subjects");
  TCAST_CHECK(sc.x <= sc.n);

  RngStream positives_rng(sc.seed, 0);
  RngStream channel_rng(sc.seed, 1);
  RngStream algo_rng(sc.seed, 2);
  std::vector<bool> positive(sc.n, false);
  for (const NodeId id : positives_rng.sample_subset(sc.n, sc.x))
    positive[static_cast<std::size_t>(id)] = true;

  // Base tier.
  std::unique_ptr<group::ExactChannel> exact;
  std::unique_ptr<group::PacketChannel> packet;
  std::unique_ptr<OracleAdapter> adapter;
  group::QueryChannel* base = nullptr;
  std::span<const NodeId> participants;
  if (sc.tier == Tier::kExact) {
    group::ExactChannel::Config ecfg;
    ecfg.model = sc.model;
    exact = std::make_unique<group::ExactChannel>(positive, channel_rng,
                                                  ecfg);
    base = exact.get();
    participants = exact->all_nodes();
  } else {
    group::PacketChannel::Config pcfg;
    pcfg.model = sc.model;
    pcfg.seed = sc.seed;
    pcfg.stream = 1;
    pcfg.lp_hosted = sc.lp_hosted;
    packet = std::make_unique<group::PacketChannel>(positive, pcfg);
    adapter = std::make_unique<OracleAdapter>(*packet, positive);
    base = adapter.get();
    participants = packet->all_nodes();
  }

  // Fault injector: live plan-driven draws, or verbatim trace replay.
  std::unique_ptr<faults::FaultyChannel> faulty;
  std::unique_ptr<faults::TraceChannel> traced;
  group::QueryChannel* injected = nullptr;
  if (replay != nullptr) {
    traced = std::make_unique<faults::TraceChannel>(*base, *replay);
    injected = traced.get();
  } else {
    faulty = std::make_unique<faults::FaultyChannel>(*base, participants,
                                                     sc.plan);
    injected = faulty.get();
  }

  // Conformance monitors, mirroring exactly the inferences that are sound
  // on this stack. The query bound only holds when nothing can inflate the
  // count past the registered worst case (no loss-driven re-querying).
  const bool lossy = injected->lossy();
  conformance::CheckedChannel::Config ccfg;
  ccfg.exact_semantics = !lossy;
  ccfg.two_plus_activity_counts_two = !lossy;
  ccfg.query_bound =
      !lossy && sc.retry.kind == core::RetryPolicy::Kind::kNone
          ? conformance::registered_query_bound(sc.algorithm, sc.n, sc.t)
          : 0.0;
  conformance::CheckedChannel checked(*injected, participants, ccfg);

  core::EngineOptions opts;
  opts.ordering = core::BinOrdering::kInOrder;  // cross-tier parity
  opts.retry = sc.retry;
  opts.unsafe_counts_two_despite_loss = sc.break_counts_two_gate;

  SessionReport rep;
  rep.scenario = sc;
  rep.outcome = spec->run(checked, participants, sc.t, algo_rng, opts);
  checked.check_outcome(sc.t, rep.outcome);
  rep.violations = checked.violations();
  if (replay != nullptr) {
    rep.trace.events = traced->log().events();
    rep.trace.lossy = traced->lossy();
  } else {
    rep.trace = faults::FaultTrace::record(*faulty);
  }
  rep.algo_rng_probe = algo_rng.bits();
  rep.channel_rng_probe =
      sc.tier == Tier::kExact ? channel_rng.bits() : 0;
  return rep;
}

}  // namespace

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kExact: return "exact";
    case Tier::kPacket: return "packet";
  }
  return "?";
}

std::optional<Tier> parse_tier(std::string_view text) {
  if (text == "exact") return Tier::kExact;
  if (text == "packet") return Tier::kPacket;
  return std::nullopt;
}

std::string ChaosScenario::spec() const {
  std::string s = "algo=" + algorithm;
  s += ";n=" + std::to_string(n);
  s += ";x=" + std::to_string(x);
  s += ";t=" + std::to_string(t);
  s += ";model=";
  s += group::to_string(model);
  s += ";tier=";
  s += chaos::to_string(tier);
  s += ";seed=" + std::to_string(seed);
  s += ";plan=" + plan.to_spec();
  if (retry.kind != core::RetryPolicy::Kind::kNone)
    s += ";retry=" + retry.spec();
  if (break_counts_two_gate) s += ";unsafe=1";
  if (lp_hosted) s += ";lp=1";
  return s;
}

std::optional<ChaosScenario> ChaosScenario::parse(std::string_view text) {
  ChaosScenario sc;
  if (text.empty()) return std::nullopt;
  for (const auto token : split(text, ';')) {
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = token.substr(0, eq);
    const auto value = token.substr(eq + 1);
    if (key == "algo") {
      if (value.empty()) return std::nullopt;
      sc.algorithm = std::string(value);
    } else if (key == "n" || key == "x" || key == "t") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      (key == "n" ? sc.n : key == "x" ? sc.x : sc.t) =
          static_cast<std::size_t>(*v);
    } else if (key == "model") {
      if (value == "1+") {
        sc.model = group::CollisionModel::kOnePlus;
      } else if (value == "2+") {
        sc.model = group::CollisionModel::kTwoPlus;
      } else {
        return std::nullopt;
      }
    } else if (key == "tier") {
      const auto tier = parse_tier(value);
      if (!tier) return std::nullopt;
      sc.tier = *tier;
    } else if (key == "seed") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      sc.seed = *v;
    } else if (key == "plan") {
      const auto plan = faults::FaultPlan::parse(value);
      if (!plan) return std::nullopt;
      sc.plan = *plan;
    } else if (key == "retry") {
      const auto retry = core::RetryPolicy::parse(value);
      if (!retry) return std::nullopt;
      sc.retry = *retry;
    } else if (key == "unsafe") {
      if (value != "0" && value != "1") return std::nullopt;
      sc.break_counts_two_gate = value == "1";
    } else if (key == "lp") {
      if (value != "0" && value != "1") return std::nullopt;
      sc.lp_hosted = value == "1";
    } else {
      return std::nullopt;
    }
  }
  if (sc.x > sc.n) return std::nullopt;
  return sc;
}

SessionReport run_session(const ChaosScenario& scenario) {
  return run_impl(scenario, nullptr);
}

SessionReport replay_session(const ChaosScenario& scenario,
                             const faults::FaultTrace& trace) {
  return run_impl(scenario, &trace);
}

std::vector<faults::FaultPlan> default_plan_grid(std::uint64_t seed) {
  using LP = faults::FaultPlan::LossProcess;
  std::vector<faults::FaultPlan> plans;
  const auto add = [&plans, seed](faults::FaultPlan p) {
    p.seed = seed + plans.size();
    plans.push_back(p);
  };
  add({});  // clean — must be violation-free under the exact monitors
  faults::FaultPlan iid;
  iid.process = LP::kIid;
  iid.loss = 0.05;
  add(iid);
  faults::FaultPlan iid_dg = iid;
  iid_dg.loss = 0.15;
  iid_dg.capture_downgrade = 0.1;
  add(iid_dg);
  faults::FaultPlan ge;
  ge.process = LP::kGilbertElliott;  // defaults: 0.02:0.25:0:0.7
  add(ge);
  faults::FaultPlan ge_dg = ge;
  ge_dg.capture_downgrade = 0.1;
  add(ge_dg);
  faults::FaultPlan crash;
  crash.crash_rate = 0.02;
  add(crash);
  faults::FaultPlan crash_reboot = crash;
  crash_reboot.reboot_after = 4;
  add(crash_reboot);
  faults::FaultPlan storm = ge;
  storm.crash_rate = 0.02;
  storm.reboot_after = 6;
  add(storm);
  return plans;
}

CampaignConfig counting_campaign_config(std::uint64_t seed) {
  using LP = faults::FaultPlan::LossProcess;
  CampaignConfig cfg;
  cfg.seed = seed;
  for (const auto& spec : core::algorithm_registry())
    if (spec.name.starts_with("count:")) cfg.algorithms.push_back(spec.name);
  const auto add = [&cfg, seed](faults::FaultPlan p) {
    p.seed = seed + cfg.plans.size();
    cfg.plans.push_back(p);
  };
  add({});  // clean control: exact estimators must be exactly right here
  faults::FaultPlan iid;
  iid.process = LP::kIid;
  iid.loss = 0.1;
  add(iid);
  faults::FaultPlan ge;
  ge.process = LP::kGilbertElliott;
  add(ge);
  faults::FaultPlan crash;
  crash.crash_rate = 0.02;
  add(crash);
  faults::FaultPlan crash_reboot = crash;
  crash_reboot.reboot_after = 4;
  add(crash_reboot);
  return cfg;
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  std::vector<std::string> algorithms = cfg.algorithms;
  if (algorithms.empty()) {
    for (const auto& spec : core::algorithm_registry())
      if (!spec.needs_oracle) algorithms.push_back(spec.name);
  }
  const auto plans =
      cfg.plans.empty() ? default_plan_grid(cfg.seed) : cfg.plans;

  // The scenario list is built single-threaded from one dedicated stream,
  // so it — and therefore the whole campaign — is a pure function of cfg.
  RngStream gen(cfg.seed, /*stream=*/0xC4A05ULL);
  std::vector<ChaosScenario> scenarios;
  scenarios.reserve(algorithms.size() * cfg.tiers.size() * plans.size() *
                    cfg.sessions_per_cell);
  for (const auto& algo : algorithms) {
    for (const Tier tier : cfg.tiers) {
      const std::size_t max_n =
          tier == Tier::kExact ? cfg.max_exact_n : cfg.max_packet_n;
      for (const auto& plan : plans) {
        for (std::size_t s = 0; s < cfg.sessions_per_cell; ++s) {
          ChaosScenario sc;
          sc.algorithm = algo;
          sc.tier = tier;
          sc.n = 1 + static_cast<std::size_t>(gen.uniform_below(max_n));
          sc.x = static_cast<std::size_t>(gen.uniform_below(sc.n + 1));
          sc.t = static_cast<std::size_t>(gen.uniform_below(sc.n + 2));
          sc.model = gen.uniform_below(2) == 0
                         ? group::CollisionModel::kOnePlus
                         : group::CollisionModel::kTwoPlus;
          sc.plan = plan;
          sc.plan.seed = gen.bits();
          sc.retry = cfg.retry;
          sc.seed = gen.bits();
          sc.break_counts_two_gate = cfg.break_counts_two_gate;
          sc.lp_hosted = tier == Tier::kPacket && cfg.lp_hosted_packet;
          scenarios.push_back(sc);
        }
      }
    }
  }

  struct BatchCtx {
    const std::vector<ChaosScenario>* scenarios;
    std::vector<SessionReport>* reports;
  };
  std::vector<SessionReport> reports(scenarios.size());
  BatchCtx ctx{&scenarios, &reports};
  ThreadPool* pool = cfg.pool != nullptr ? cfg.pool : &ThreadPool::global();
  pool->run_batch(
      scenarios.size(),
      [](void* raw, std::size_t i) {
        auto& c = *static_cast<BatchCtx*>(raw);
        (*c.reports)[i] = run_session((*c.scenarios)[i]);
      },
      &ctx);

  CampaignResult result;
  result.sessions = reports.size();
  for (auto& rep : reports) {
    result.faults_injected += rep.trace.events.size();
    if (rep.false_yes()) ++result.false_yes;
    if (rep.false_no()) ++result.false_no;
    if (!rep.ok()) result.violating.push_back(std::move(rep));
  }
  return result;
}

}  // namespace tcast::chaos
