// Cross-traffic interference source (the paper's multihop future work,
// Sec. III-B).
//
// In a multihop deployment the initiator's singlehop neighbourhood overhears
// traffic from neighbouring regions. Sec. III-B argues this breaks the two
// RCD primitives differently:
//
//   * pollcast infers "non-empty" from *any* channel energy (CCA/RSSI), so
//     foreign traffic in the vote window is a false positive;
//   * backcast only accepts a decoded HACK, which foreign traffic cannot
//     forge — no false positives — but a foreign frame colliding with the
//     HACK superposition can destroy it: false negatives remain possible.
//
// InterferenceSource models a neighbouring region as a Poisson stream of
// foreign data frames on the shared channel, transmitted regardless of our
// protocol state (a different PAN does not carrier-sense our slots
// faithfully). Intensity is expressed as the long-run fraction of air time
// occupied.
#pragma once

#include <memory>
#include <utility>

#include "radio/radio.hpp"
#include "sim/timer.hpp"

namespace tcast::radio {

class InterferenceSource {
 public:
  struct Config {
    /// Long-run fraction of air time occupied by foreign traffic, in
    /// [0, ~0.8]. 0 disables the source.
    double duty = 0.1;
    /// Payload size of foreign frames (drives per-burst airtime).
    std::size_t frame_bytes = 32;
    /// Source address stamped on foreign frames (diagnostics only).
    ShortAddr foreign_addr = 0xBEEF;
    /// Placement in spatial (finite-range) channels.
    std::pair<double, double> position = {0.0, 0.0};
  };

  /// Attaches a foreign transmitter to `channel`. Starts emitting when
  /// start() is called; gaps are exponential with mean chosen so the
  /// busy fraction matches cfg.duty.
  InterferenceSource(Channel& channel, Config cfg);

  void start();
  void stop();

  std::uint64_t frames_emitted() const { return frames_emitted_; }

 private:
  void schedule_next();
  void emit();

  Channel* channel_;
  sim::Simulator* sim_;
  Config cfg_;
  std::unique_ptr<Radio> radio_;
  sim::Timer timer_;
  bool running_ = false;
  std::uint64_t frames_emitted_ = 0;
};

}  // namespace tcast::radio
