// 802.15.4-flavoured frame model for the packet-level tier.
//
// We model the fields the tcast protocols actually depend on: type, 16-bit
// short addresses (including the ephemeral backcast address), the
// ACK-request flag, a sequence number, and enough payload structure to give
// frames realistic airtimes. Payload *content* that matters to protocols is
// carried as typed fields rather than serialized bytes — the radio substrate
// is a simulator, not a codec.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace tcast::radio {

/// 16-bit short address space (CC2420 hardware address recognition).
using ShortAddr = std::uint16_t;

/// Broadcast address per 802.15.4.
inline constexpr ShortAddr kBroadcastAddr = 0xFFFF;

/// Base of the ephemeral address block backcast programs per bin:
/// bin g answers to kEphemeralBase + g.
inline constexpr ShortAddr kEphemeralBase = 0xE000;

enum class FrameType : std::uint8_t {
  kData,        ///< generic payload (examples, link layer)
  kPredicate,   ///< tcast phase 1: predicate + bin assignment broadcast
  kPoll,        ///< tcast phase 2: poll addressed to an ephemeral address
  kReply,       ///< pollcast vote: positive node's simultaneous reply
  kHack,        ///< hardware acknowledgement (identical per sequence number)
  kAck,         ///< software ACK used by the reliable link layer
};

const char* to_string(FrameType t);

struct Frame {
  FrameType type = FrameType::kData;
  ShortAddr src = 0;
  ShortAddr dest = kBroadcastAddr;
  std::uint8_t seq = 0;
  bool ack_request = false;

  /// Protocol payloads (only the fields the type uses are meaningful).
  std::uint32_t session = 0;       ///< tcast session id
  std::uint16_t bin_index = 0;     ///< kPoll: which bin is being polled
  std::uint8_t predicate_id = 0;   ///< kPredicate: which predicate to test
  std::vector<std::uint16_t> assignment;  ///< kPredicate: node -> bin map
  std::vector<std::uint8_t> data;         ///< kData payload bytes

  /// MAC payload length in bytes (drives airtime).
  std::size_t payload_bytes() const;

  /// Full PPDU length in bytes: preamble(4) + SFD(1) + LEN(1) + MHR(9) +
  /// payload + FCS(2). HACKs are the fixed 5-byte 802.15.4 ACK MPDU + PHY.
  std::size_t air_bytes() const;

  std::string to_string() const;
};

/// Two HACKs superpose non-destructively iff they are bit-identical, i.e.
/// same sequence number (802.15.4 ACKs carry no source address).
bool hacks_identical(const Frame& a, const Frame& b);

/// Builds the hardware ACK for a received frame.
Frame make_hack(const Frame& acked);

/// Same, from the only two fields a HACK derives from — lets deferred ACK
/// events capture 3 bytes instead of a whole Frame.
Frame make_hack(std::uint8_t seq, ShortAddr dest);

}  // namespace tcast::radio
