// Per-node radio state machine (CC2420-flavoured).
//
// Provides the three capabilities the tcast stack needs from hardware:
//   * hardware address recognition — a primary 16-bit short address plus an
//     optional *alternate* address slot that backcast programs with the
//     ephemeral per-bin address;
//   * automatic hardware acknowledgements (HACKs) for accepted frames whose
//     ACK-request flag is set — generated below software, identical per
//     sequence number, after exactly one turnaround time (which is what
//     makes simultaneous HACKs superpose);
//   * activity (CCA/RSSI) indications — the receiver-side collision
//     detection signal pollcast uses.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "radio/frame.hpp"

namespace tcast::radio {

class Radio {
 public:
  using ReceiveHandler = std::function<void(const Frame&, const RxInfo&)>;
  /// Raised once per resolved cluster on listening radios, decodable or not.
  using ActivityHandler = std::function<void(SimTime start, SimTime end)>;

  Radio(Channel& channel, NodeId owner, ShortAddr short_addr);
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  NodeId owner() const { return owner_; }
  sim::Simulator& simulator() { return *sim_; }
  const PhyParams& phy() const { return channel_->phy(); }
  Channel& channel() { return *channel_; }

  /// Physical placement (metres). Only meaningful when the channel has a
  /// finite reception range (multihop topologies); colocated by default.
  void set_position(double x, double y) {
    pos_x_ = x;
    pos_y_ = y;
  }
  double pos_x() const { return pos_x_; }
  double pos_y() const { return pos_y_; }

  void power_on();   ///< Off → Rx
  void power_off();  ///< any → Off; cancels nothing on-air (tx completes)

  RadioState state() const { return state_; }
  bool is_on() const { return state_ != RadioState::kOff; }

  /// Fault-injection hook: a deaf radio keeps its state machine (it still
  /// transmits, still counts as kRx for the channel's busy-period
  /// bookkeeping) but drops every delivery and activity indication at the
  /// antenna. Unlike power_off this consumes no RNG and perturbs nothing at
  /// the channel level, which is what makes frame-level false-empty faults
  /// replay bit-identically (faults/TraceChannel).
  void set_deaf(bool deaf) { deaf_ = deaf; }
  bool deaf() const { return deaf_; }

  void set_short_address(ShortAddr a) { short_addr_ = a; }
  ShortAddr short_address() const { return short_addr_; }

  /// Programs / clears the alternate (ephemeral) hardware address — the
  /// CC2420's 16-bit short-address recognition slot.
  void set_alt_address(std::optional<ShortAddr> a) { alt_addr_ = a; }
  std::optional<ShortAddr> alt_address() const { return alt_addr_; }

  /// The second recognition slot (the CC2420's 64-bit extended address,
  /// modelled with the same 16-bit ephemeral space). Having two slots is
  /// what lets a node take part in two concurrent backcast sessions
  /// (paper Sec. IV-D.1: "enabling two concurrent backcasts at most").
  void set_ext_alt_address(std::optional<ShortAddr> a) { ext_alt_addr_ = a; }
  std::optional<ShortAddr> ext_alt_address() const { return ext_alt_addr_; }

  void set_auto_ack(bool enabled) { auto_ack_ = enabled; }

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }
  void set_activity_handler(ActivityHandler h) { on_activity_ = std::move(h); }

  /// Begins transmitting immediately (MAC is responsible for CCA/backoff).
  /// Requires the radio to be on and not already transmitting.
  void transmit(Frame f);

  bool transmitting() const { return state_ == RadioState::kTx; }

  /// Clear-channel assessment: true when the medium is idle *as heard
  /// here* — with a finite range this is what enables hidden terminals.
  bool cca_clear() const { return !channel_->busy_near(*this); }

  EnergyMeter& energy() { return energy_; }

  /// Count of frames accepted by address filtering (diagnostics).
  std::uint64_t frames_received() const { return frames_received_; }

  // --- Channel-facing interface (not for protocol code) ---
  void channel_deliver(const Frame& f, const RxInfo& info);
  void channel_activity(SimTime start, SimTime end);
  void channel_tx_done();

 private:
  bool address_accepts(const Frame& f) const;
  void set_state(RadioState s);

  Channel* channel_;
  sim::Simulator* sim_;
  NodeId owner_;
  ShortAddr short_addr_;
  std::optional<ShortAddr> alt_addr_;
  std::optional<ShortAddr> ext_alt_addr_;
  bool auto_ack_ = true;
  RadioState state_ = RadioState::kOff;
  ReceiveHandler on_receive_;
  ActivityHandler on_activity_;
  EnergyMeter energy_;
  std::uint64_t frames_received_ = 0;
  bool deaf_ = false;
  double pos_x_ = 0.0;
  double pos_y_ = 0.0;
};

}  // namespace tcast::radio
