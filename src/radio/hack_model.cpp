#include "radio/hack_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tcast::radio {

HackReceptionModel::HackReceptionModel(double fn1, double beta)
    : fn1_(fn1), beta_(beta) {
  TCAST_CHECK(fn1 >= 0.0 && fn1 <= 1.0);
  TCAST_CHECK(beta >= 0.0 && beta <= 1.0);
}

double HackReceptionModel::miss_probability(std::size_t k) const {
  TCAST_CHECK(k >= 1);
  return fn1_ * std::pow(beta_, static_cast<double>(k - 1));
}

bool HackReceptionModel::decodes(std::size_t k, RngStream& rng) const {
  return !rng.bernoulli(miss_probability(k));
}

}  // namespace tcast::radio
