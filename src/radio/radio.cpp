#include "radio/radio.hpp"

namespace tcast::radio {

Radio::Radio(Channel& channel, NodeId owner, ShortAddr short_addr)
    : channel_(&channel),
      sim_(&channel.simulator()),
      owner_(owner),
      short_addr_(short_addr) {
  channel_->attach(*this);
}

Radio::~Radio() { channel_->detach(*this); }

void Radio::power_on() {
  if (state_ == RadioState::kOff) set_state(RadioState::kRx);
}

void Radio::power_off() {
  // A transmission already on the air completes at the channel level; the
  // radio simply stops listening.
  set_state(RadioState::kOff);
}

void Radio::transmit(Frame f) {
  TCAST_CHECK_MSG(is_on(), "transmit on a powered-off radio");
  TCAST_CHECK_MSG(state_ != RadioState::kTx, "radio is half-duplex");
  set_state(RadioState::kTx);
  channel_->begin_transmission(*this, std::move(f));
}

void Radio::channel_tx_done() {
  if (state_ == RadioState::kTx) set_state(RadioState::kRx);
}

bool Radio::address_accepts(const Frame& f) const {
  if (f.dest == kBroadcastAddr) return true;
  if (f.dest == short_addr_) return true;
  if (alt_addr_.has_value() && f.dest == *alt_addr_) return true;
  return ext_alt_addr_.has_value() && f.dest == *ext_alt_addr_;
}

void Radio::channel_deliver(const Frame& f, const RxInfo& info) {
  if (state_ != RadioState::kRx) return;
  if (deaf_) return;
  if (!address_accepts(f)) return;
  ++frames_received_;
  // Hardware acknowledgement: below software, after one turnaround, for
  // accepted non-ACK frames that request it. This is what backcast leans on:
  // every matching receiver HACKs at exactly the same instant.
  if (auto_ack_ && f.ack_request && f.type != FrameType::kHack &&
      f.type != FrameType::kAck) {
    // Capture only the fields the HACK derives from: a by-value Frame would
    // push the closure past std::function's inline buffer and cost one heap
    // allocation per acknowledgement.
    sim_->schedule_after(channel_->phy().turnaround,
                         [this, seq = f.seq, dest = f.src] {
                           if (state_ == RadioState::kRx)
                             transmit(make_hack(seq, dest));
                         });
  }
  if (on_receive_) on_receive_(f, info);
}

void Radio::channel_activity(SimTime start, SimTime end) {
  if (state_ != RadioState::kRx) return;
  if (deaf_) return;
  if (on_activity_) on_activity_(start, end);
}

void Radio::set_state(RadioState s) {
  if (s == state_) return;
  energy_.transition(s, sim_->now());
  state_ = s;
}

}  // namespace tcast::radio
