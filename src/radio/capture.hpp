// Capture-effect models.
//
// When k > 1 frames overlap at a receiver, real radios sometimes lock onto
// one of them (Whitehouse et al., EmNetS'05). The 2+ collision model of the
// paper relies on exactly this. Two interchangeable models:
//
//  * GeometricCaptureModel — P(capture | k) = c · γ^(k−1); the direct
//    parametric form of the paper's "decreasing probability as the number of
//    messages increase". k = 1 always captures.
//  * SinrCaptureModel — draws per-frame lognormal fading and captures the
//    strongest frame iff its power exceeds `threshold ×` the sum of the
//    rest; physically grounded, capture probability emerges from fading.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "common/rng.hpp"

namespace tcast::radio {

class CaptureModel {
 public:
  virtual ~CaptureModel() = default;

  /// Given k ≥ 1 overlapping distinct frames, returns the index in [0, k) of
  /// the captured frame, or nullopt if nothing is decodable.
  /// Contract: k == 1 must always capture (a lone frame is just a frame).
  virtual std::optional<std::size_t> captured_index(std::size_t k,
                                                    RngStream& rng) = 0;
};

class GeometricCaptureModel final : public CaptureModel {
 public:
  explicit GeometricCaptureModel(double c = 1.0, double gamma = 0.5);

  std::optional<std::size_t> captured_index(std::size_t k,
                                            RngStream& rng) override;

  /// P(capture | k) in closed form (used by tests and analysis).
  double capture_probability(std::size_t k) const;

 private:
  double c_;
  double gamma_;
};

class SinrCaptureModel final : public CaptureModel {
 public:
  /// `threshold_db`: required power margin of the winner over the sum of
  /// interferers; `fading_sigma_db`: lognormal shadowing spread.
  explicit SinrCaptureModel(double threshold_db = 3.0,
                            double fading_sigma_db = 6.0);

  std::optional<std::size_t> captured_index(std::size_t k,
                                            RngStream& rng) override;

 private:
  double threshold_db_;
  double fading_sigma_db_;
};

/// A model that never captures (strict 1+ radios).
class NoCaptureModel final : public CaptureModel {
 public:
  std::optional<std::size_t> captured_index(std::size_t k,
                                            RngStream& rng) override;
};

std::unique_ptr<CaptureModel> default_capture_model();

}  // namespace tcast::radio
