#include "radio/capture.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace tcast::radio {

GeometricCaptureModel::GeometricCaptureModel(double c, double gamma)
    : c_(c), gamma_(gamma) {
  TCAST_CHECK(c >= 0.0 && c <= 1.0);
  TCAST_CHECK(gamma >= 0.0 && gamma <= 1.0);
}

double GeometricCaptureModel::capture_probability(std::size_t k) const {
  TCAST_CHECK(k >= 1);
  if (k == 1) return 1.0;
  return c_ * std::pow(gamma_, static_cast<double>(k - 1));
}

std::optional<std::size_t> GeometricCaptureModel::captured_index(
    std::size_t k, RngStream& rng) {
  TCAST_CHECK(k >= 1);
  if (k == 1) return 0;
  if (!rng.bernoulli(capture_probability(k))) return std::nullopt;
  return static_cast<std::size_t>(rng.uniform_below(k));
}

SinrCaptureModel::SinrCaptureModel(double threshold_db, double fading_sigma_db)
    : threshold_db_(threshold_db), fading_sigma_db_(fading_sigma_db) {
  TCAST_CHECK(fading_sigma_db >= 0.0);
}

std::optional<std::size_t> SinrCaptureModel::captured_index(std::size_t k,
                                                            RngStream& rng) {
  TCAST_CHECK(k >= 1);
  if (k == 1) return 0;
  // Equal nominal power, independent lognormal shadowing per frame.
  std::vector<double> mw(k);
  std::size_t best = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double db = rng.normal(0.0, fading_sigma_db_);
    mw[i] = std::pow(10.0, db / 10.0);
    total += mw[i];
    if (mw[i] > mw[best]) best = i;
  }
  const double interference = total - mw[best];
  const double margin = std::pow(10.0, threshold_db_ / 10.0);
  if (mw[best] >= margin * interference) return best;
  return std::nullopt;
}

std::optional<std::size_t> NoCaptureModel::captured_index(std::size_t k,
                                                          RngStream& rng) {
  (void)rng;
  TCAST_CHECK(k >= 1);
  if (k == 1) return 0;
  return std::nullopt;
}

std::unique_ptr<CaptureModel> default_capture_model() {
  return std::make_unique<GeometricCaptureModel>();
}

}  // namespace tcast::radio
