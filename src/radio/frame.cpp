#include "radio/frame.hpp"

#include <cstdio>

namespace tcast::radio {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kPredicate: return "PREDICATE";
    case FrameType::kPoll: return "POLL";
    case FrameType::kReply: return "REPLY";
    case FrameType::kHack: return "HACK";
    case FrameType::kAck: return "ACK";
  }
  return "?";
}

std::size_t Frame::payload_bytes() const {
  switch (type) {
    case FrameType::kData:
      return data.size();
    case FrameType::kPredicate:
      // predicate id + session + packed 4-bit bin ids for each node.
      return 1 + 4 + (assignment.size() + 1) / 2;
    case FrameType::kPoll:
      return 4 + 2;  // session + bin index
    case FrameType::kReply:
      return 4;  // session (src carries identity)
    case FrameType::kHack:
    case FrameType::kAck:
      return 0;
  }
  return 0;
}

std::size_t Frame::air_bytes() const {
  constexpr std::size_t kPhyOverhead = 4 + 1 + 1;  // preamble + SFD + LEN
  if (type == FrameType::kHack || type == FrameType::kAck)
    return kPhyOverhead + 5;  // FCF(2) + seq(1) + FCS(2)
  constexpr std::size_t kMhr = 9;  // FCF(2) + seq(1) + dst(2) + src(2) + PAN(2)
  constexpr std::size_t kFcs = 2;
  return kPhyOverhead + kMhr + payload_bytes() + kFcs;
}

std::string Frame::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s seq=%u src=%04x dst=%04x%s (%zuB)",
                radio::to_string(type), seq, src, dest,
                ack_request ? " AR" : "", air_bytes());
  return buf;
}

bool hacks_identical(const Frame& a, const Frame& b) {
  return a.type == FrameType::kHack && b.type == FrameType::kHack &&
         a.seq == b.seq;
}

Frame make_hack(const Frame& acked) { return make_hack(acked.seq, acked.src); }

Frame make_hack(std::uint8_t seq, ShortAddr dest) {
  Frame hack;
  hack.type = FrameType::kHack;
  hack.seq = seq;
  hack.src = 0;  // 802.15.4 ACKs carry no addresses
  hack.dest = dest;
  return hack;
}

}  // namespace tcast::radio
