#include "radio/interference.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tcast::radio {

InterferenceSource::InterferenceSource(Channel& channel, Config cfg)
    : channel_(&channel),
      sim_(&channel.simulator()),
      cfg_(cfg),
      timer_(channel.simulator(), [this] { emit(); }) {
  TCAST_CHECK(cfg_.duty >= 0.0 && cfg_.duty < 1.0);
  // The interferer is itself a radio (so its frames occupy the channel like
  // any other), owned by a fictitious foreign node.
  radio_ = std::make_unique<Radio>(*channel_, kNoNode, cfg_.foreign_addr);
  radio_->set_position(cfg_.position.first, cfg_.position.second);
  radio_->set_auto_ack(false);
  radio_->power_on();
}

void InterferenceSource::start() {
  if (cfg_.duty <= 0.0 || running_) return;
  running_ = true;
  schedule_next();
}

void InterferenceSource::stop() {
  running_ = false;
  timer_.stop();
}

void InterferenceSource::schedule_next() {
  Frame probe;
  probe.type = FrameType::kData;
  probe.data.resize(cfg_.frame_bytes);
  const double burst = static_cast<double>(channel_->airtime(probe));
  // busy/(busy+idle) = duty  ⇒  mean idle gap = burst·(1−duty)/duty.
  const double mean_gap = burst * (1.0 - cfg_.duty) / cfg_.duty;
  double u = sim_->rng().uniform01();
  while (u <= 0.0) u = sim_->rng().uniform01();
  const auto gap = static_cast<SimTime>(-mean_gap * std::log(u));
  timer_.start_one_shot(std::max<SimTime>(1, gap));
}

void InterferenceSource::emit() {
  if (!running_) return;
  if (!radio_->transmitting()) {
    Frame f;
    f.type = FrameType::kData;
    f.src = cfg_.foreign_addr;
    f.dest = cfg_.foreign_addr;  // foreign PAN: nobody here accepts it
    f.data.resize(cfg_.frame_bytes);
    radio_->transmit(std::move(f));
    ++frames_emitted_;
  }
  schedule_next();
}

}  // namespace tcast::radio
