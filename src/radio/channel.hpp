// Broadcast channel with receiver-centric collision resolution.
//
// Reception is resolved per receiver over its *busy period*: the maximal
// interval of continuous audible energy at that radio. When a busy period
// drains, the audible frames it accumulated are adjudicated:
//
//   1 frame                → clean delivery (subject to i.i.d. link loss;
//                            a lone HACK passes the HACK-miss model)
//   k identical HACKs      → non-destructive superposition; decoded with
//                            probability 1 − miss(k) (HackReceptionModel)
//   k distinct frames      → destructive collision; CaptureModel may hand
//                            one frame to the receiver (the 2+ model's
//                            capture effect), otherwise only energy is seen
//
// Every busy period also raises an *activity* indication — the CCA/RSSI
// signal pollcast's receiver-side collision detection is built on. A radio
// that transmitted during the period senses energy but decodes nothing
// (half-duplex).
//
// With the default infinite range all radios share every busy period — the
// paper's singlehop model. A finite unit-disk `range` makes audibility,
// CCA and collisions local, which is what produces hidden terminals and
// neighbouring-region interference in multihop topologies (the paper's
// future-work setting). Positions must not change while frames are on the
// air.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "radio/capture.hpp"
#include "radio/frame.hpp"
#include "radio/hack_model.hpp"
#include "sim/simulator.hpp"

namespace tcast::radio {

class Radio;

/// PHY timing constants (802.15.4 @ 250 kbps; 1 symbol = 16 µs).
struct PhyParams {
  SimTime byte_time = 32 * kMicrosecond;     ///< 2 symbols per byte
  SimTime turnaround = 192 * kMicrosecond;   ///< aTurnaroundTime (12 symbols)
  SimTime sifs = 192 * kMicrosecond;
  SimTime backoff_slot = 320 * kMicrosecond; ///< aUnitBackoffPeriod
  SimTime cca_time = 128 * kMicrosecond;     ///< 8 symbols
};

struct ChannelConfig {
  PhyParams phy;
  double clean_loss = 0.0;  ///< i.i.d. per-receiver loss for lone frames
  HackReceptionModel hack = HackReceptionModel::ideal();
  std::shared_ptr<CaptureModel> capture;  ///< nullptr = NoCaptureModel
  /// Unit-disk reception range in metres; 0 = infinite (every radio hears
  /// every other — the paper's singlehop model). A finite range makes
  /// reception, CCA and collisions *per-receiver*, which is what produces
  /// hidden terminals and neighbouring-region interference in multihop
  /// topologies (the paper's future-work setting).
  double range = 0.0;
};

/// Reception metadata handed to radios alongside a delivered frame.
struct RxInfo {
  std::size_t superposed = 1;  ///< HACK superposition multiplicity
  std::size_t contenders = 1;  ///< overlapping frames in the cluster
  bool captured = false;       ///< true when won via capture effect
  SimTime start = 0;           ///< cluster start
  SimTime end = 0;             ///< cluster end (delivery time)
};

class Channel {
 public:
  /// Observes every *local* transmission as it starts — the LP-addressable
  /// delivery hook: an LP-sharded world (sim/parallel) taps its cell's
  /// channel and mirrors the frame into neighbouring cells as timestamped
  /// cross-LP events instead of closing over one global queue. Ghost
  /// (injected) transmissions are not re-tapped, so mirroring cannot echo.
  using TxTap = std::function<void(const Frame& f, const Radio& sender,
                                   SimTime start, SimTime end)>;

  Channel(sim::Simulator& simulator, ChannelConfig cfg);

  sim::Simulator& simulator() { return *sim_; }
  const PhyParams& phy() const { return cfg_.phy; }

  void attach(Radio& r);
  void detach(Radio& r);

  /// Starts a transmission; the frame occupies the medium for airtime(f).
  /// Called by Radio::transmit.
  void begin_transmission(Radio& sender, Frame f);

  /// Injects a foreign transmission with no local sender radio: the frame
  /// occupies the medium from now for airtime(f), raises CCA/activity,
  /// collides with local frames and is delivered under the same reception
  /// rules, as if transmitted by an unseen radio at (x, y). This is how a
  /// neighbouring logical process's broadcast lands in this LP's world
  /// (and how cross-region interference reaches a hosted singlehop world).
  void inject_transmission(Frame f, double x, double y);

  void set_tx_tap(TxTap tap) { tx_tap_ = std::move(tap); }

  /// True while any transmission is on the air anywhere (global view).
  bool busy() const { return active_ > 0; }

  /// True while a transmission audible at `listener` is on the air — the
  /// CCA signal a real radio samples. Equals busy() for infinite range.
  bool busy_near(const Radio& listener) const;

  /// Unit-disk audibility between two radios.
  bool in_range(const Radio& a, const Radio& b) const;

  SimTime airtime(const Frame& f) const {
    return static_cast<SimTime>(f.air_bytes()) * cfg_.phy.byte_time;
  }

  /// Lifetime count of global busy periods (diagnostics / tests).
  std::uint64_t clusters_resolved() const { return clusters_resolved_; }

 private:
  struct Tx {
    Radio* sender = nullptr;  ///< nullptr for injected (ghost) transmissions
    Frame frame;
    double x = 0.0;  ///< transmit position, latched when the frame starts
    double y = 0.0;
    SimTime start = 0;
    SimTime end = 0;
    std::uint32_t refs = 0;  ///< pending end event + receptions holding it
  };

  /// Per-receiver busy-period state.
  struct Reception {
    SimTime start = 0;
    std::size_t on_air = 0;   ///< audible foreign frames still transmitting
    bool sent_own = false;    ///< this radio transmitted during the period
    std::vector<Tx*> frames;  ///< pool-owned; ref-held until resolved
  };

  Tx* acquire_tx();
  void release_tx(Tx* tx);
  /// Folds a prepared Tx (sender/frame/position set) into every audible
  /// busy period and schedules its end. Shared by local and ghost paths.
  void launch(Tx* tx);
  bool tx_audible(const Tx& tx, const Radio& r) const;
  void on_transmission_end(Tx* tx);
  void resolve_reception(Radio& r, Reception& rec);

  sim::Simulator* sim_;
  ChannelConfig cfg_;
  TxTap tx_tap_;
  std::vector<Radio*> radios_;
  std::vector<std::pair<Radio*, Reception>> receptions_;  ///< by attach order
  std::size_t active_ = 0;  ///< transmissions on the air anywhere
  std::uint64_t clusters_resolved_ = 0;

  // Transmission pool: Tx objects (and their frames' payload capacity) are
  // recycled through a free list instead of allocated per transmission, and
  // a drained busy period parks its frame vector in `spare_rec_` so the
  // next period reuses the capacity. Together with the event queue's slot
  // pool this keeps the steady-state poll exchange heap-silent — audited
  // by tests/perf/alloc_audit_test.cpp.
  std::vector<std::unique_ptr<Tx>> tx_pool_;
  std::vector<Tx*> tx_free_;
  Reception spare_rec_;

  Reception& reception(Radio& r);
};

}  // namespace tcast::radio
