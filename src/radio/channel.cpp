#include "radio/channel.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "radio/radio.hpp"

namespace tcast::radio {

Channel::Channel(sim::Simulator& simulator, ChannelConfig cfg)
    : sim_(&simulator), cfg_(std::move(cfg)) {
  if (!cfg_.capture) cfg_.capture = std::make_shared<NoCaptureModel>();
}

void Channel::attach(Radio& r) {
  TCAST_CHECK(std::find(radios_.begin(), radios_.end(), &r) == radios_.end());
  radios_.push_back(&r);
  receptions_.emplace_back(&r, Reception{});
}

void Channel::detach(Radio& r) {
  std::erase(radios_, &r);
  for (auto& [radio, rec] : receptions_)
    if (radio == &r)
      for (Tx* t : rec.frames) release_tx(t);
  std::erase_if(receptions_,
                [&r](const auto& entry) { return entry.first == &r; });
}

Channel::Tx* Channel::acquire_tx() {
  if (tx_free_.empty())
    tx_free_.push_back(tx_pool_.emplace_back(std::make_unique<Tx>()).get());
  Tx* tx = tx_free_.back();
  tx_free_.pop_back();
  return tx;
}

void Channel::release_tx(Tx* tx) {
  TCAST_CHECK(tx->refs > 0);
  if (--tx->refs == 0) tx_free_.push_back(tx);
}

Channel::Reception& Channel::reception(Radio& r) {
  for (auto& [radio, rec] : receptions_)
    if (radio == &r) return rec;
  TCAST_CHECK_MSG(false, "radio is not attached to this channel");
  return receptions_.front().second;  // unreachable
}

bool Channel::in_range(const Radio& a, const Radio& b) const {
  if (cfg_.range <= 0.0) return true;
  const double dx = a.pos_x() - b.pos_x();
  const double dy = a.pos_y() - b.pos_y();
  return dx * dx + dy * dy <= cfg_.range * cfg_.range;
}

bool Channel::busy_near(const Radio& listener) const {
  for (const auto& [radio, rec] : receptions_)
    if (radio == &listener) return rec.on_air > 0;
  return false;
}

bool Channel::tx_audible(const Tx& tx, const Radio& r) const {
  if (cfg_.range <= 0.0) return true;
  const double dx = tx.x - r.pos_x();
  const double dy = tx.y - r.pos_y();
  return dx * dx + dy * dy <= cfg_.range * cfg_.range;
}

void Channel::begin_transmission(Radio& sender, Frame f) {
  Tx* tx = acquire_tx();
  tx->sender = &sender;
  tx->frame = std::move(f);
  tx->x = sender.pos_x();
  tx->y = sender.pos_y();
  launch(tx);
  if (tx_tap_) tx_tap_(tx->frame, sender, tx->start, tx->end);
}

void Channel::inject_transmission(Frame f, double x, double y) {
  Tx* tx = acquire_tx();
  tx->sender = nullptr;
  tx->frame = std::move(f);
  tx->x = x;
  tx->y = y;
  launch(tx);  // no tap: mirrored frames must not be re-mirrored
}

void Channel::launch(Tx* tx) {
  const SimTime now = sim_->now();
  tx->start = now;
  tx->end = now + airtime(tx->frame);
  tx->refs = 1;  // the pending end event
  ++active_;
  // Fold the frame into the busy period of every radio that can hear it.
  for (auto& [radio, rec] : receptions_) {
    if (radio == tx->sender) {
      // A transmitter talking into its own open period corrupts it.
      if (rec.on_air > 0) rec.sent_own = true;
      continue;
    }
    if (!tx_audible(*tx, *radio)) continue;
    if (rec.on_air == 0 && rec.frames.empty()) {
      rec.start = now;
      rec.sent_own = radio->transmitting();
    } else if (radio->transmitting()) {
      rec.sent_own = true;
    }
    rec.frames.push_back(tx);
    ++tx->refs;
    ++rec.on_air;
  }
  // [this, tx] fits std::function's inline buffer — a by-value Tx (or a
  // shared_ptr) would cost one heap closure per transmission.
  sim_->schedule_at(tx->end, [this, tx] { on_transmission_end(tx); });
}

void Channel::on_transmission_end(Tx* tx) {
  TCAST_CHECK(active_ > 0);
  --active_;
  if (active_ == 0) ++clusters_resolved_;  // a global busy period drained
  if (tx->sender != nullptr) tx->sender->channel_tx_done();
  for (auto& [radio, rec] : receptions_) {
    if (radio == tx->sender || !tx_audible(*tx, *radio)) continue;
    TCAST_CHECK(rec.on_air > 0);
    --rec.on_air;
    if (rec.on_air == 0) {
      // Swap the drained period out before resolving (delivery handlers may
      // transmit and open a fresh period on this very radio), then park the
      // frame vector in the spare so the next period reuses its capacity.
      Reception finished = std::move(spare_rec_);
      std::swap(finished, rec);
      resolve_reception(*radio, finished);
      for (Tx* t : finished.frames) release_tx(t);
      finished.frames.clear();
      finished.start = 0;
      finished.on_air = 0;
      finished.sent_own = false;
      spare_rec_ = std::move(finished);
    }
  }
  release_tx(tx);
}

void Channel::resolve_reception(Radio& r, Reception& rec) {
  if (rec.frames.empty()) return;
  if (r.state() != RadioState::kRx) return;  // off or mid-transmission
  const SimTime end = sim_->now();
  r.channel_activity(rec.start, end);
  if (rec.sent_own) return;  // half-duplex: sensed energy, decoded nothing

  const std::size_t k = rec.frames.size();
  RngStream& rng = sim_->rng();
  const bool all_identical_hacks =
      std::all_of(rec.frames.begin(), rec.frames.end(), [&](const Tx* tx) {
        return hacks_identical(tx->frame, rec.frames.front()->frame);
      });
  if (all_identical_hacks && k > 1) {
    if (cfg_.hack.decodes(k, rng)) {
      RxInfo info{.superposed = k, .contenders = k, .captured = false,
                  .start = rec.start, .end = end};
      r.channel_deliver(rec.frames.front()->frame, info);
    }
  } else if (k == 1) {
    const Frame& frame = rec.frames.front()->frame;
    const bool is_hack = frame.type == FrameType::kHack;
    const bool lost = is_hack ? !cfg_.hack.decodes(1, rng)
                              : rng.bernoulli(cfg_.clean_loss);
    if (!lost) {
      RxInfo info{.superposed = 1, .contenders = 1, .captured = false,
                  .start = rec.start, .end = end};
      r.channel_deliver(frame, info);
    }
  } else {
    // Destructive collision of distinct frames: capture effect may hand the
    // receiver one of them.
    if (const auto idx = cfg_.capture->captured_index(k, rng)) {
      RxInfo info{.superposed = 1, .contenders = k, .captured = true,
                  .start = rec.start, .end = end};
      r.channel_deliver(rec.frames[*idx]->frame, info);
    }
  }
}

}  // namespace tcast::radio
