#include "radio/energy.hpp"

#include "common/check.hpp"

namespace tcast::radio {

void EnergyMeter::transition(RadioState next, SimTime now) {
  TCAST_CHECK_MSG(now >= last_change_, "energy meter time went backwards");
  time_[static_cast<std::size_t>(state_)] += now - last_change_;
  state_ = next;
  last_change_ = now;
}

double EnergyMeter::charge_mc() const {
  const auto seconds = [](SimTime t) {
    return static_cast<double>(t) / static_cast<double>(kSecond);
  };
  return cfg_.off_ma * seconds(time_in(RadioState::kOff)) +
         cfg_.rx_ma * seconds(time_in(RadioState::kRx)) +
         cfg_.tx_ma * seconds(time_in(RadioState::kTx));
}

}  // namespace tcast::radio
