// Radio energy accounting (CC2420-flavoured current draws).
//
// Listening dominates a mote's budget; tcast's value proposition is fewer
// queries ⇒ shorter radio-on windows. The meter integrates time-in-state so
// the examples and benches can report energy alongside query counts.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace tcast::radio {

enum class RadioState : std::size_t { kOff = 0, kRx = 1, kTx = 2 };

inline constexpr std::size_t kRadioStateCount = 3;

struct EnergyConfig {
  // CC2420 datasheet typical values at 3.0 V.
  double off_ma = 0.001;  ///< power-down leakage
  double rx_ma = 18.8;    ///< receive / listen
  double tx_ma = 17.4;    ///< transmit at 0 dBm
  double voltage = 3.0;
};

class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyConfig cfg = {}) : cfg_(cfg) {}

  /// Records a state change at simulated time `now` (monotonic).
  void transition(RadioState next, SimTime now);

  /// Closes the books at `now` without changing state (for reading totals).
  void settle(SimTime now) { transition(state_, now); }

  RadioState state() const { return state_; }
  SimTime time_in(RadioState s) const {
    return time_[static_cast<std::size_t>(s)];
  }

  /// Total charge in millicoulombs and energy in millijoules.
  double charge_mc() const;
  double energy_mj() const { return charge_mc() * cfg_.voltage; }

 private:
  EnergyConfig cfg_;
  RadioState state_ = RadioState::kOff;
  SimTime last_change_ = 0;
  std::array<SimTime, kRadioStateCount> time_{};
};

}  // namespace tcast::radio
