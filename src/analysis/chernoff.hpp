// Repeat-count analysis for the probabilistic threshold test (Sec. VI-A).
//
// One sampled-bin query is a Bernoulli trial with success (non-empty)
// probability q(x) = 1 − (1 − 1/b)^x. When x ≤ t_l the rate is at most
// q(t_l); when x ≥ t_r it is at least q(t_r). Repeating r times and
// thresholding the non-empty count in the gap separates the two modes.
#pragma once

#include <cstddef>

namespace tcast::analysis {

struct SamplingPlan {
  double b;        ///< sampling bin parameter (inclusion probability 1/b)
  double q_low;    ///< per-trial non-empty prob at x = t_l
  double q_high;   ///< per-trial non-empty prob at x = t_r
  double gap() const { return q_high - q_low; }

  /// Expected non-empty counts after r repeats (the paper's m1, m2).
  double m1(std::size_t r) const { return static_cast<double>(r) * q_low; }
  double m2(std::size_t r) const { return static_cast<double>(r) * q_high; }

  /// Decision cut: count > (m1 + m2)/2 ⇒ high mode (Sec. VI-B).
  double decision_cut(std::size_t r) const {
    return (m1(r) + m2(r)) / 2.0;
  }
};

/// The gap-maximising bin parameter: argmax_b (1−1/b)^{t_l} − (1−1/b)^{t_r},
/// solved in closed form: q* = (t_l / t_r)^{1/(t_r − t_l)}, b* = 1/(1−q*).
/// (The paper leaves b free; DESIGN.md decision #5.) Requires t_r > t_l ≥ 0;
/// for t_l = 0 the optimum is b* = 1/(1 − 0^{...}) → use the limit form.
double optimal_sampling_bin(double t_l, double t_r);

/// Builds the plan for boundaries (t_l, t_r) with the optimal b (or a
/// caller-supplied b when b_override > 0).
SamplingPlan make_sampling_plan(double t_l, double t_r,
                                double b_override = 0.0);

/// Paper Eq. (10): r ≥ 2·log(1/δ) / (ε·log 2e) with ε the tolerated count
/// deviation. Kept verbatim for reproduction.
std::size_t paper_repeats(double delta, double epsilon);

/// Standard two-sided Hoeffding bound on the per-trial rate: to separate two
/// Bernoulli rates with gap Δq at overall failure probability ≤ δ,
/// r ≥ 2·ln(2/δ) / Δq². (The statistically-grounded companion; Fig. 10
/// reports both alongside the empirical requirement.)
std::size_t hoeffding_repeats(double delta, double rate_gap);

}  // namespace tcast::analysis
