// The bimodal positive-count model of Sec. VI.
//
// In intrusion-detection-style deployments x (the number of positive nodes)
// is either a handful of false alarms — N(μ1, σ1²), μ1 ≈ 0 — or a genuine
// event seen by many nodes — N(μ2, σ2²). Samples are clamped to [0, n] and
// rounded to integers.
#pragma once

#include <cstddef>
#include <utility>

#include "common/rng.hpp"

namespace tcast::analysis {

struct BimodalDistribution {
  double mu1 = 0.0;
  double sigma1 = 1.0;
  double mu2 = 0.0;
  double sigma2 = 1.0;
  double weight_low = 0.5;  ///< probability of the false-alarm mode

  /// Paper Fig. 9/11 parameterisation: peaks at n/2 ∓ d.
  static BimodalDistribution symmetric(std::size_t n, double d, double sigma);

  /// Draws x ∈ {0, ..., n}; also reports which mode generated it (the
  /// ground truth the accuracy experiments score against).
  struct Sample {
    std::size_t x;
    bool from_high_mode;
  };
  Sample sample(std::size_t n, RngStream& rng) const;

  /// Boundary values used by the decision rule: t_l = μ1 + 2σ1,
  /// t_r = μ2 − 2σ2 (Sec. VI-A).
  double t_l() const { return mu1 + 2.0 * sigma1; }
  double t_r() const { return mu2 - 2.0 * sigma2; }

  /// (t_l, t_r) clamped to stay ordered when the modes overlap (small d):
  /// falls back to midpoint ± 0.5, the regime where the paper reports
  /// accuracies as low as 70%.
  std::pair<double, double> decision_boundaries() const;

  /// Half-distance between the peaks, d = (μ2 − μ1) / 2.
  double separation() const { return (mu2 - mu1) / 2.0; }
};

}  // namespace tcast::analysis
