#include "analysis/estimators.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tcast::analysis {

double expected_eliminated_per_query(std::size_t n, std::size_t p, double b) {
  TCAST_CHECK(b >= 1.0);
  return std::pow(1.0 - 1.0 / b, static_cast<double>(p)) *
         (static_cast<double>(n) / b);
}

std::size_t optimal_bin_count(std::size_t p) { return p + 1; }

double expected_empty_bins(std::size_t b, double p) {
  TCAST_CHECK(b >= 1);
  const double bd = static_cast<double>(b);
  return std::pow(1.0 - 1.0 / bd, p) * bd;
}

double estimate_p(std::size_t empty_bins, std::size_t b,
                  double all_full_fallback) {
  TCAST_CHECK(b >= 1);
  TCAST_CHECK(empty_bins <= b);
  if (b == 1 || empty_bins == 0) return all_full_fallback;
  if (empty_bins == b) return 0.0;
  const double bd = static_cast<double>(b);
  const double e = static_cast<double>(empty_bins);
  return (std::log(e) - std::log(bd)) / std::log(1.0 - 1.0 / bd);
}

double nonempty_probability(double b, double x) {
  TCAST_CHECK(b >= 1.0);
  return 1.0 - std::pow(1.0 - 1.0 / b, x);
}

}  // namespace tcast::analysis
