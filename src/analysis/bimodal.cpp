#include "analysis/bimodal.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tcast::analysis {

BimodalDistribution BimodalDistribution::symmetric(std::size_t n, double d,
                                                   double sigma) {
  TCAST_CHECK(d >= 0.0);
  BimodalDistribution dist;
  const double center = static_cast<double>(n) / 2.0;
  dist.mu1 = center - d;
  dist.mu2 = center + d;
  dist.sigma1 = sigma;
  dist.sigma2 = sigma;
  dist.weight_low = 0.5;
  return dist;
}

std::pair<double, double> BimodalDistribution::decision_boundaries() const {
  double lo = t_l();
  double hi = t_r();
  if (hi <= lo) {
    const double mid = (mu1 + mu2) / 2.0;
    lo = mid - 0.5;
    hi = mid + 0.5;
  }
  return {lo, hi};
}

BimodalDistribution::Sample BimodalDistribution::sample(
    std::size_t n, RngStream& rng) const {
  const bool high = !rng.bernoulli(weight_low);
  const double raw = high ? rng.normal(mu2, sigma2) : rng.normal(mu1, sigma1);
  const double clamped =
      std::clamp(std::round(raw), 0.0, static_cast<double>(n));
  return Sample{static_cast<std::size_t>(clamped), high};
}

}  // namespace tcast::analysis
