// Closed-form estimators from Sec. V-A of the paper.
#pragma once

#include <cstddef>

namespace tcast::analysis {

/// Eq. (2): g(b) = (1 − 1/b)^p · n/b — the expected number of nodes
/// eliminated by one query when p positives are spread over b bins of n/b
/// nodes. The quantity the optimal bin count maximises.
double expected_eliminated_per_query(std::size_t n, std::size_t p, double b);

/// Eq. (4): argmax_b g(b) = p + 1. Valid for p < t (the paper's own note);
/// callers clamp to [2, n].
std::size_t optimal_bin_count(std::size_t p);

/// Eq. (5): expected number of empty bins, e = (1 − 1/b)^p · b.
double expected_empty_bins(std::size_t b, double p);

/// Eq. (6): inverts Eq. (5) — estimates p from the observed number of empty
/// bins e_real in a round with b bins:
///     p = (log e_real − log b) / log(1 − 1/b)
/// Guards (the paper leaves these implicit):
///   e_real == 0 → no information upward; returns `all_full_fallback`
///                 (ABNS uses max(2b, 2p_prev)).
///   e_real == b → p = 0.
///   b == 1      → a single bin carries no count information; returns the
///                 fallback.
double estimate_p(std::size_t empty_bins, std::size_t b,
                  double all_full_fallback);

/// Probability that one specific bin out of b is non-empty when x positives
/// are placed independently: 1 − (1 − 1/b)^x. (Sec. VI system model; exact
/// for the Bernoulli sampling bin with inclusion probability 1/b.)
double nonempty_probability(double b, double x);

}  // namespace tcast::analysis
