// Query-cost bounds from the paper and its companion theory ([4], k+
// decision trees).
#pragma once

#include <cstddef>

namespace tcast::analysis {

/// Upper bound on 2tBins queries: 2t · log2(N / 2t) (Sec. IV-A), clamped to
/// at least one round of 2t queries. N = participants, t = threshold.
double two_t_bins_upper_bound(std::size_t n, std::size_t t);

/// Aspnes et al. lower bound Ω(t · log(N/t) / log t) — the constant-free
/// shape, used to sanity-check measured averages stay above trivial floors.
double threshold_query_lower_bound(std::size_t n, std::size_t t);

/// Universal per-run hard ceiling on queries for every RoundEngine-based
/// algorithm (the conformance harness enforces it on each randomized run,
/// not just on average). Derivation from the engine's invariants:
///   * an empty-result query disposes ≥ 1 candidate, and a captured-result
///     query removes one — at most 2N such queries over a whole run;
///   * a round sees < t activity results before the threshold test fires,
///     so activity queries ≤ t per round;
///   * a completed round either makes progress (disposal or capture, ≤ N of
///     those) or doubles the bin count (anti-livelock), and bins are clamped
///     to the candidate count — ≤ log2(N)+2 consecutive doubling rounds.
/// Total: 2N + t · (N+1) · (log2(N)+2), plus the O(1) out-of-engine queries
/// (the probabilistic-ABNS hint). Enormously loose for every real algorithm
/// (typical costs are O(t log(N/t))); it exists to catch runaway loops.
double engine_query_bound(std::size_t n, std::size_t t);

/// Paper Sec. IV-C closed form for the x = 0 cost of 2tBins:
/// (n − t) / (n / 2t) — the number of (empty) bins that must be disposed
/// before fewer than t candidates remain.
double two_t_bins_zero_x_cost(std::size_t n, std::size_t t);

/// Oracle bin count b(x) (Sec. V-C) — the piecewise interpolation defining
/// the lower-bound "oracle" algorithm:
///   b = x + 1                       for x ≤ t/2
///   b = 3x − t                      for t/2 < x ≤ t
///   b = t · (1 + (n−x)/(n−t+1))     for x > t
double oracle_bin_count(std::size_t n, std::size_t t, std::size_t x);

}  // namespace tcast::analysis
