#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tcast::analysis {

double two_t_bins_upper_bound(std::size_t n, std::size_t t) {
  TCAST_CHECK(t >= 1);
  const double nd = static_cast<double>(n);
  const double td = static_cast<double>(t);
  const double rounds = std::max(1.0, std::log2(nd / (2.0 * td)));
  return 2.0 * td * rounds;
}

double threshold_query_lower_bound(std::size_t n, std::size_t t) {
  TCAST_CHECK(t >= 1);
  const double nd = static_cast<double>(n);
  const double td = static_cast<double>(t);
  if (n <= t) return 0.0;
  const double logt = std::max(1.0, std::log2(td));
  return td * std::max(0.0, std::log2(nd / td)) / logt;
}

double engine_query_bound(std::size_t n, std::size_t t) {
  const double nd = static_cast<double>(std::max<std::size_t>(n, 1));
  const double td = static_cast<double>(std::max<std::size_t>(t, 1));
  const double doubling_span = std::log2(nd) + 2.0;
  return 2.0 * nd + td * (nd + 1.0) * doubling_span + 4.0;
}

double two_t_bins_zero_x_cost(std::size_t n, std::size_t t) {
  TCAST_CHECK(t >= 1);
  const double nd = static_cast<double>(n);
  const double td = static_cast<double>(t);
  if (nd <= td) return 0.0;
  return (nd - td) / (nd / (2.0 * td));
}

double oracle_bin_count(std::size_t n, std::size_t t, std::size_t x) {
  TCAST_CHECK(t >= 1);
  TCAST_CHECK(x <= n);
  const double nd = static_cast<double>(n);
  const double td = static_cast<double>(t);
  const double xd = static_cast<double>(x);
  double b;
  if (xd <= td / 2.0) {
    b = xd + 1.0;
  } else if (xd <= td) {
    b = 3.0 * xd - td;
  } else {
    b = td * (1.0 + (nd - xd) / (nd - td + 1.0));
  }
  return std::max(1.0, b);
}

}  // namespace tcast::analysis
