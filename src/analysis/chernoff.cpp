#include "analysis/chernoff.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/estimators.hpp"
#include "common/check.hpp"

namespace tcast::analysis {

double optimal_sampling_bin(double t_l, double t_r) {
  TCAST_CHECK(t_r > t_l);
  TCAST_CHECK(t_l >= 0.0);
  if (t_l <= 0.0) {
    // limit t_l → 0: maximise 1 − q^{t_r}; any b works for separating from
    // x = 0 (q_low = 0); pick the bin that makes q_high comfortably large.
    return std::max(1.5, t_r / std::log(4.0));
  }
  const double q = std::pow(t_l / t_r, 1.0 / (t_r - t_l));
  TCAST_CHECK(q > 0.0 && q < 1.0);
  return std::max(1.0 + 1e-9, 1.0 / (1.0 - q));
}

SamplingPlan make_sampling_plan(double t_l, double t_r, double b_override) {
  SamplingPlan plan;
  plan.b = b_override > 0.0 ? b_override : optimal_sampling_bin(t_l, t_r);
  plan.q_low = nonempty_probability(plan.b, std::max(0.0, t_l));
  plan.q_high = nonempty_probability(plan.b, t_r);
  return plan;
}

std::size_t paper_repeats(double delta, double epsilon) {
  TCAST_CHECK(delta > 0.0 && delta < 1.0);
  TCAST_CHECK(epsilon > 0.0);
  const double r =
      2.0 * std::log(1.0 / delta) / (epsilon * std::log(2.0 * std::exp(1.0)));
  return static_cast<std::size_t>(std::ceil(std::max(1.0, r)));
}

std::size_t hoeffding_repeats(double delta, double rate_gap) {
  TCAST_CHECK(delta > 0.0 && delta < 1.0);
  TCAST_CHECK(rate_gap > 0.0 && rate_gap <= 1.0);
  // Each mode's count must stay on its side of the midpoint, i.e. deviate
  // by less than Δq/2 per trial; two-sided Hoeffding per mode.
  const double half = rate_gap / 2.0;
  const double r = std::log(2.0 / delta) / (2.0 * half * half);
  return static_cast<std::size_t>(std::ceil(std::max(1.0, r)));
}

}  // namespace tcast::analysis
