// Minimal JSON value model for the benchmark harness.
//
// The perf trajectory (BENCH_tcast.json) must be machine-readable by CI
// tooling and round-trippable by the harness's own self-tests, so this is a
// real (small) parser + serialiser, not printf-only: objects, arrays,
// strings with escapes, doubles (%.17g — bit-exact round-trip), bools,
// null. No external dependencies.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace tcast::perf {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps key order deterministic, so serialised reports diff
  /// cleanly in version control.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(std::size_t u) : v_(static_cast<double>(u)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Serialises; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  bool operator==(const JsonValue& o) const { return v_ == o.v_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Parses one JSON document. Returns nullopt on malformed input and, when
/// `error` is non-null, a human-readable reason with an offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace tcast::perf
