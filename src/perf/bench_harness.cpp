#include "perf/bench_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/check.hpp"
#include "perf/hw_counters.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif
#if defined(__linux__)
#include <sched.h>
#endif

namespace tcast::perf {

double wall_now() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

double cpu_now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double median_of(std::vector<double> xs) {
  TCAST_CHECK(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

double mad_of(const std::vector<double>& xs) {
  TCAST_CHECK(!xs.empty());
  const double med = median_of(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) dev.push_back(std::abs(x - med));
  return median_of(std::move(dev));
}

Summary summarize(const std::vector<Sample>& samples) {
  TCAST_CHECK(!samples.empty());
  std::vector<double> wall, cpu;
  wall.reserve(samples.size());
  cpu.reserve(samples.size());
  for (const Sample& s : samples) {
    wall.push_back(s.wall_s);
    cpu.push_back(s.cpu_s);
  }
  Summary out;
  out.reps = samples.size();
  out.wall_min_s = *std::min_element(wall.begin(), wall.end());
  out.wall_median_s = median_of(wall);
  out.wall_mad_s = mad_of(wall);
  out.cpu_min_s = *std::min_element(cpu.begin(), cpu.end());
  out.cpu_median_s = median_of(cpu);
  out.cpu_mad_s = mad_of(cpu);
  return out;
}

double BenchResult::items_per_s() const {
  return timing.wall_median_s > 0.0
             ? static_cast<double>(items) / timing.wall_median_s
             : 0.0;
}

double BenchResult::items_per_s_best() const {
  return timing.wall_min_s > 0.0
             ? static_cast<double>(items) / timing.wall_min_s
             : 0.0;
}

JsonValue BenchResult::to_json() const {
  JsonValue::Object params_obj;
  for (const auto& [k, v] : params) params_obj.emplace(k, v);
  JsonValue::Object stats{
      {"wall_min_s", timing.wall_min_s},
      {"wall_median_s", timing.wall_median_s},
      {"wall_mad_s", timing.wall_mad_s},
      {"cpu_min_s", timing.cpu_min_s},
      {"cpu_median_s", timing.cpu_median_s},
      {"cpu_mad_s", timing.cpu_mad_s},
  };
  JsonValue::Object obj{
      {"name", name},
      {"unit", unit},
      {"params", std::move(params_obj)},
      {"items", static_cast<double>(items)},
      {"reps", timing.reps},
      {"stats", std::move(stats)},
      {"items_per_s", items_per_s()},
      {"items_per_s_best", items_per_s_best()},
  };
  if (!percentiles.empty()) {
    JsonValue::Object pct;
    for (const auto& [k, v] : percentiles) pct.emplace(k, v);
    obj.emplace("percentiles", std::move(pct));
  }
  if (!counters.empty()) {
    JsonValue::Object ctr;
    for (const auto& [k, v] : counters) ctr.emplace(k, v);
    obj.emplace("counters", std::move(ctr));
  }
  return JsonValue(std::move(obj));
}

namespace {

bool read_number(const JsonValue& v, std::string_view key, double* out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->is_number()) return false;
  *out = f->as_number();
  return true;
}

bool read_string(const JsonValue& v, std::string_view key, std::string* out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->is_string()) return false;
  *out = f->as_string();
  return true;
}

}  // namespace

std::optional<BenchResult> BenchResult::from_json(const JsonValue& v) {
  BenchResult r;
  double items = 0.0, reps = 0.0;
  if (!read_string(v, "name", &r.name) || !read_string(v, "unit", &r.unit) ||
      !read_number(v, "items", &items) || !read_number(v, "reps", &reps))
    return std::nullopt;
  r.items = static_cast<std::uint64_t>(items);
  r.timing.reps = static_cast<std::size_t>(reps);
  const JsonValue* stats = v.find("stats");
  if (stats == nullptr || !stats->is_object()) return std::nullopt;
  if (!read_number(*stats, "wall_min_s", &r.timing.wall_min_s) ||
      !read_number(*stats, "wall_median_s", &r.timing.wall_median_s) ||
      !read_number(*stats, "wall_mad_s", &r.timing.wall_mad_s) ||
      !read_number(*stats, "cpu_min_s", &r.timing.cpu_min_s) ||
      !read_number(*stats, "cpu_median_s", &r.timing.cpu_median_s) ||
      !read_number(*stats, "cpu_mad_s", &r.timing.cpu_mad_s))
    return std::nullopt;
  if (const JsonValue* params = v.find("params");
      params != nullptr && params->is_object()) {
    for (const auto& [k, pv] : params->as_object())
      if (pv.is_number()) r.params.emplace(k, pv.as_number());
  }
  if (const JsonValue* pct = v.find("percentiles");
      pct != nullptr && pct->is_object()) {
    for (const auto& [k, pv] : pct->as_object())
      if (pv.is_number()) r.percentiles.emplace(k, pv.as_number());
  }
  if (const JsonValue* ctr = v.find("counters");
      ctr != nullptr && ctr->is_object()) {
    for (const auto& [k, cv] : ctr->as_object())
      if (cv.is_number()) r.counters.emplace(k, cv.as_number());
  }
  return r;
}

void BenchRegistry::add(Benchmark b) {
  TCAST_CHECK_MSG(!b.name.empty(), "benchmark needs a name");
  TCAST_CHECK(b.body != nullptr);
  for (const Benchmark& existing : benches_)
    TCAST_CHECK_MSG(existing.name != b.name, "duplicate benchmark name");
  benches_.push_back(std::move(b));
}

std::vector<BenchResult> BenchRegistry::run(const RunOptions& opts,
                                            std::ostream* progress) const {
  std::vector<BenchResult> out;
  for (const Benchmark& b : benches_) {
    if (!opts.filter.empty() &&
        b.name.find(opts.filter) == std::string::npos)
      continue;
    if (progress) *progress << b.name << " ..." << std::flush;
    std::uint64_t items = 0;
    for (std::size_t w = 0; w < opts.effective_warmup(); ++w)
      items = b.body(opts.quick);
    std::vector<Sample> samples;
    samples.reserve(opts.effective_reps());
    for (std::size_t r = 0; r < opts.effective_reps(); ++r) {
      const double w0 = wall_now();
      const double c0 = cpu_now();
      items = b.body(opts.quick);
      samples.push_back(Sample{wall_now() - w0, cpu_now() - c0});
    }
    BenchResult res;
    res.name = b.name;
    res.unit = b.unit;
    res.params = b.params;
    res.items = items;
    res.timing = summarize(samples);
    // One extra *counted* repetition for the families whose regressions
    // are usually cache/branch stories. Untimed, optional, never gating:
    // on hosts where perf_event_open is denied this silently does nothing.
    if (b.name.starts_with("core/") || b.name.starts_with("sim/")) {
      HwCounters hw;
      if (hw.available()) {
        hw.start();
        b.body(opts.quick);
        res.counters = hw.stop();
      }
    }
    if (progress) {
      char line[160];
      std::snprintf(line, sizeof line,
                    " %.3f ms median (MAD %.3f), %.3g %ss/s\n",
                    res.timing.wall_median_s * 1e3,
                    res.timing.wall_mad_s * 1e3, res.items_per_s(),
                    res.unit.c_str());
      *progress << line << std::flush;
    }
    out.push_back(std::move(res));
  }
  return out;
}

BenchRegistry& BenchRegistry::global() {
  static BenchRegistry registry;
  return registry;
}

HostInfo host_info() {
  HostInfo h;
#if defined(__VERSION__)
  h.compiler = __VERSION__;
#else
  h.compiler = "unknown";
#endif
#if defined(TCAST_BUILD_TYPE)
  h.build_type = TCAST_BUILD_TYPE;
#else
  h.build_type = "unknown";
#endif
  h.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0)
    h.affinity_cpus = static_cast<unsigned>(CPU_COUNT(&set));
#endif
  return h;
}

std::string current_git_sha() {
  if (const char* env = std::getenv("TCAST_GIT_SHA");
      env != nullptr && env[0] != '\0')
    return env;
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t n = fread(buf, 1, sizeof buf - 1, p);
    const int status = pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
      sha.pop_back();
    if (status == 0 && sha.size() >= 7) return sha;
  }
#endif
  return "unknown";
}

JsonValue Report::to_json() const {
  JsonValue::Array arr;
  arr.reserve(results.size());
  for (const BenchResult& r : results) arr.push_back(r.to_json());
  return JsonValue(JsonValue::Object{
      {"schema", schema},
      {"git_sha", git_sha},
      {"quick", quick},
      {"host",
       JsonValue::Object{
           {"compiler", host.compiler},
           {"build_type", host.build_type},
           {"hardware_threads", static_cast<double>(host.hardware_threads)},
           {"affinity_cpus", static_cast<double>(host.affinity_cpus)},
       }},
      {"benchmarks", std::move(arr)},
  });
}

std::optional<Report> Report::from_json(const JsonValue& v) {
  Report rep;
  if (!read_string(v, "schema", &rep.schema) ||
      rep.schema != "tcast-bench-v1" ||
      !read_string(v, "git_sha", &rep.git_sha))
    return std::nullopt;
  if (const JsonValue* q = v.find("quick"); q != nullptr && q->is_bool())
    rep.quick = q->as_bool();
  if (const JsonValue* host = v.find("host");
      host != nullptr && host->is_object()) {
    read_string(*host, "compiler", &rep.host.compiler);
    read_string(*host, "build_type", &rep.host.build_type);
    double threads = 0.0;
    if (read_number(*host, "hardware_threads", &threads))
      rep.host.hardware_threads = static_cast<unsigned>(threads);
    double affinity = 0.0;
    if (read_number(*host, "affinity_cpus", &affinity))
      rep.host.affinity_cpus = static_cast<unsigned>(affinity);
  }
  const JsonValue* arr = v.find("benchmarks");
  if (arr == nullptr || !arr->is_array()) return std::nullopt;
  for (const JsonValue& rv : arr->as_array()) {
    auto r = BenchResult::from_json(rv);
    if (!r) return std::nullopt;
    rep.results.push_back(std::move(*r));
  }
  return rep;
}

}  // namespace tcast::perf
