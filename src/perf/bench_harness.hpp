// Self-timing benchmark harness for the tcast perf trajectory.
//
// A Benchmark is a named closure that executes one repetition of a workload
// and reports how many items (trials, events, polls, runs) it processed.
// The harness runs warmup repetitions, then timed repetitions measuring
// wall time (steady_clock) and process CPU time, and summarises them with
// robust statistics: min, median, and MAD (median absolute deviation) —
// the right summary for timing samples, whose noise is one-sided.
//
// Reports serialise to BENCH_tcast.json (schema `tcast-bench-v1`: name,
// params, unit, items, reps, wall/cpu stats, throughput, git sha, host
// info) so every PR extends a machine-readable perf trajectory and CI can
// gate on regressions (tools/compare_bench.py). See docs/PERFORMANCE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "perf/json.hpp"

namespace tcast::perf {

/// One timed repetition of a benchmark body.
struct Sample {
  double wall_s = 0.0;
  double cpu_s = 0.0;
};

/// Seconds on the monotonic wall clock.
double wall_now();
/// Seconds of CPU time consumed by the whole process (all threads).
double cpu_now();

/// Median of a sample set (average of the middle pair for even sizes).
/// Precondition: non-empty.
double median_of(std::vector<double> xs);

/// Median absolute deviation: median(|x - median(x)|). Robust spread
/// measure — one slow outlier repetition barely moves it.
double mad_of(const std::vector<double>& xs);

/// Robust summary of the wall/CPU samples of one benchmark.
struct Summary {
  std::size_t reps = 0;
  double wall_min_s = 0.0;
  double wall_median_s = 0.0;
  double wall_mad_s = 0.0;
  double cpu_min_s = 0.0;
  double cpu_median_s = 0.0;
  double cpu_mad_s = 0.0;
};
Summary summarize(const std::vector<Sample>& samples);

/// Result of one benchmark: identity, workload size, and timing summary.
struct BenchResult {
  std::string name;
  std::string unit;  ///< what one item is: "trial", "event", "poll", "run"
  std::map<std::string, double> params;  ///< workload parameters (n, trials…)
  std::uint64_t items = 0;               ///< items processed per repetition
  Summary timing;
  /// Optional latency-distribution entries ("p50_us", "p99_us", "p999_us",
  /// ...) for service/load-rig benchmarks where tail latency — not
  /// throughput — is the gated quantity (tools/compare_bench.py treats
  /// these inversely: larger is a regression). Empty for throughput-only
  /// benchmarks; round-trips through BENCH_tcast.json untouched.
  std::map<std::string, double> percentiles;
  /// Optional hardware counters ("llc_misses", "branch_misses") from one
  /// extra counted repetition (perf/hw_counters.hpp), collected for the
  /// `core/` and `sim/` families when perf_event_open is permitted.
  /// Diagnostic only: compare_bench reports them and never gates on them;
  /// empty on hosts where the PMU is unavailable.
  std::map<std::string, double> counters;

  /// Throughput at the median repetition (the headline number).
  double items_per_s() const;
  /// Throughput at the fastest repetition (the machine's ceiling).
  double items_per_s_best() const;

  JsonValue to_json() const;
  static std::optional<BenchResult> from_json(const JsonValue& v);
};

struct RunOptions {
  bool quick = false;      ///< CI smoke scale: benchmarks shrink workloads
  std::size_t reps = 0;    ///< 0 = default (11 full, 5 quick)
  std::size_t warmup = 0;  ///< 0 = default (2 full, 1 quick)
  std::string filter;      ///< substring match on benchmark names; "" = all

  std::size_t effective_reps() const { return reps ? reps : (quick ? 5 : 11); }
  std::size_t effective_warmup() const {
    return warmup ? warmup : (quick ? 1u : 2u);
  }
};

/// A registered benchmark. `body(quick)` runs ONE repetition and returns
/// the number of items it processed (used for throughput); workloads should
/// shrink by ~an order of magnitude when `quick` is true.
struct Benchmark {
  std::string name;
  std::string unit;
  std::map<std::string, double> params;
  std::function<std::uint64_t(bool quick)> body;
};

class BenchRegistry {
 public:
  void add(Benchmark b);
  const std::vector<Benchmark>& benchmarks() const { return benches_; }

  /// Runs every benchmark whose name contains opts.filter; emits one
  /// progress line per benchmark to `progress` when non-null.
  std::vector<BenchResult> run(const RunOptions& opts,
                               std::ostream* progress = nullptr) const;

  static BenchRegistry& global();

 private:
  std::vector<Benchmark> benches_;
};

struct HostInfo {
  std::string compiler;
  std::string build_type;
  unsigned hardware_threads = 0;
  /// CPUs actually schedulable for this process (sched_getaffinity) — the
  /// honest parallel-speedup ceiling on pinned/containerized CI runners,
  /// where it is often smaller than hardware_threads. 0 = unknown.
  unsigned affinity_cpus = 0;
};
HostInfo host_info();

/// Commit under measurement: $TCAST_GIT_SHA, else `git rev-parse HEAD`,
/// else "unknown".
std::string current_git_sha();

/// A full harness run: everything BENCH_tcast.json holds.
struct Report {
  std::string schema = "tcast-bench-v1";
  std::string git_sha;
  HostInfo host;
  bool quick = false;
  std::vector<BenchResult> results;

  JsonValue to_json() const;
  std::string to_json_string() const { return to_json().dump(2) + "\n"; }
  static std::optional<Report> from_json(const JsonValue& v);
};

}  // namespace tcast::perf
