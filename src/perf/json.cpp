#include "perf/json.hpp"

// GCC 12 reports a -Wmaybe-uninitialized false positive when the JsonValue
// variant destructor is inlined into optional-returning parser frames
// (gcc PR 105562 family); there is no actual uninitialized read.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <cctype>
#include <charconv>
#include <cstdio>

namespace tcast::perf {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double d) {
  char buf[40];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    out += '"';
    out += json_escape(as_string());
    out += '"';
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      out += '"';
      out += json_escape(k);
      out += "\":";
      if (indent > 0) out += ' ';
      v.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    auto v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && error) *error = error_;
    return v;
  }

 private:
  void fail(const std::string& why) {
    if (error_.empty())
      error_ = why + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue(nullptr);
    return parse_number();
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape digit");
              return std::nullopt;
            }
          }
          // The harness only emits ASCII control escapes; decode BMP code
          // points as UTF-8 so foreign files still parse.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    double d = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc{} || end != text_.data() + pos_) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  std::optional<JsonValue> parse_array() {
    consume('[');
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return JsonValue(std::move(arr));
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_object() {
    consume('{');
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj.insert_or_assign(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return JsonValue(std::move(obj));
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace tcast::perf
