#include "perf/sweep_engine.hpp"

#include <atomic>
#include <memory>

#include "common/check.hpp"
#include "common/monte_carlo.hpp"
#include "core/registry.hpp"

namespace tcast::perf {

namespace {

/// Per-thread channel workspace, recycled across every trial this thread
/// executes within one sweep. Keyed by a sweep generation counter so a
/// later sweep with a different spec rebuilds instead of reusing stale
/// state; within one sweep every trial uses the same (n, model, capture,
/// fast-path) configuration, so reuse is always valid.
struct Workspace {
  std::uint64_t generation = 0;
  std::unique_ptr<group::ExactChannel> channel;
  std::unique_ptr<core::RoundEngine> engine;
};

thread_local Workspace t_workspace;

std::atomic<std::uint64_t> g_sweep_generation{0};

}  // namespace

QuerySweepResult run_query_sweep(const QuerySweepSpec& spec) {
  const auto* algo = core::find_algorithm(spec.algorithm);
  TCAST_CHECK_MSG(algo != nullptr, "run_query_sweep: unknown algorithm name");

  const std::size_t points = spec.points.size();
  const std::size_t trials = spec.trials;
  const std::uint64_t generation =
      g_sweep_generation.fetch_add(1, std::memory_order_relaxed) + 1;

  std::vector<double> values(points * trials, 0.0);
  double* const data = values.data();
  const SweepPoint* const grid = spec.points.data();

  parallel_for(
      points * trials,
      [&](std::size_t flat) {
        const SweepPoint& point = grid[flat / trials];
        const std::size_t trial = flat % trials;
        // The exact stream the unbatched per-point run_trials() loop used.
        RngStream rng(spec.seed,
                      trial_stream_id(point.experiment_id, trial));

        Workspace& ws = t_workspace;
        if (ws.generation != generation || !ws.channel) {
          ws.channel = std::make_unique<group::ExactChannel>(
              std::vector<bool>(spec.n, false), rng, spec.channel);
          ws.engine.reset();
          ws.generation = generation;
        }
        group::ExactChannel& channel = *ws.channel;
        channel.rebind_rng(rng);
        // Draw-identical to with_random_positives(n, x, rng, cfg).
        channel.assign_random_positives(point.x, rng);
        channel.reset_query_counter();

        core::ThresholdOutcome outcome;
        if (algo->run_with_engine) {
          // Recycle the engine's round workspaces across trials; run()
          // fully re-initialises them, so this is draw- and
          // outcome-identical to a fresh engine per trial.
          if (!ws.engine) {
            ws.engine = std::make_unique<core::RoundEngine>(channel, rng,
                                                            spec.engine);
          }
          ws.engine->rebind(channel, rng, spec.engine);
          outcome =
              algo->run_with_engine(*ws.engine, channel.all_nodes(), point.t);
        } else {
          outcome =
              algo->run(channel, channel.all_nodes(), point.t, rng,
                        spec.engine);
        }
        data[flat] = static_cast<double>(outcome.queries);
      },
      spec.pool);

  QuerySweepResult result;
  result.queries.resize(points);
  for (std::size_t p = 0; p < points; ++p)
    for (std::size_t i = 0; i < trials; ++i)
      result.queries[p].add(values[p * trials + i]);
  return result;
}

}  // namespace tcast::perf
