#include "perf/hw_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace tcast::perf {

#if defined(__linux__)

namespace {

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  // The group starts disabled; start() enables it via the leader.
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // user-space cost only, and lower paranoid bar
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd,
              /*flags=*/0));
}

}  // namespace

HwCounters::HwCounters() {
  group_fd_ =
      perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, -1);
  if (group_fd_ < 0) return;
  if (ioctl(group_fd_, PERF_EVENT_IOC_ID, &llc_id_) != 0) {
    close(group_fd_);
    group_fd_ = -1;
    return;
  }
  branch_fd_ =
      perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, group_fd_);
  if (branch_fd_ >= 0 &&
      ioctl(branch_fd_, PERF_EVENT_IOC_ID, &branch_id_) != 0) {
    close(branch_fd_);
    branch_fd_ = -1;
  }
}

HwCounters::~HwCounters() {
  if (branch_fd_ >= 0) close(branch_fd_);
  if (group_fd_ >= 0) close(group_fd_);
}

void HwCounters::start() {
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

std::map<std::string, double> HwCounters::stop() {
  std::map<std::string, double> out;
  if (group_fd_ < 0) return out;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  struct {
    std::uint64_t nr;
    struct {
      std::uint64_t value;
      std::uint64_t id;
    } v[4];
  } buf{};
  const ssize_t n = read(group_fd_, &buf, sizeof buf);
  if (n <= 0) return out;
  for (std::uint64_t i = 0; i < buf.nr && i < 4; ++i) {
    if (buf.v[i].id == llc_id_)
      out["llc_misses"] = static_cast<double>(buf.v[i].value);
    else if (branch_fd_ >= 0 && buf.v[i].id == branch_id_)
      out["branch_misses"] = static_cast<double>(buf.v[i].value);
  }
  return out;
}

#else  // !__linux__

HwCounters::HwCounters() = default;
HwCounters::~HwCounters() = default;
void HwCounters::start() {}
std::map<std::string, double> HwCounters::stop() { return {}; }

#endif

}  // namespace tcast::perf
