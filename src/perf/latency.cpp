#include "perf/latency.hpp"

#include <algorithm>
#include <cmath>

namespace tcast::perf {

double percentile_of(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return static_cast<double>(samples.front());
  if (q >= 1.0) return static_cast<double>(samples.back());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const double a = static_cast<double>(samples[lo]);
  const double b = static_cast<double>(samples[std::min(lo + 1, samples.size() - 1)]);
  return a + (b - a) * frac;
}

LatencyRecorder::LatencyRecorder(std::size_t max_samples)
    : cap_(std::max<std::size_t>(max_samples, 2)) {
  samples_.reserve(cap_);
}

void LatencyRecorder::record(std::uint64_t value_us) {
  if (count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  sum_ += static_cast<double>(value_us);
  if (count_ % stride_ == 0) {
    if (samples_.size() == cap_) {
      // Compact: keep every other retained point, double the stride. The
      // survivors stay evenly spaced over the observation sequence.
      std::size_t w = 0;
      for (std::size_t r = 0; r < samples_.size(); r += 2) samples_[w++] = samples_[r];
      samples_.resize(w);
      stride_ *= 2;
      if (count_ % stride_ == 0) samples_.push_back(value_us);
    } else {
      samples_.push_back(value_us);
    }
  }
  ++count_;
}

PercentileSummary LatencyRecorder::summarize() const {
  PercentileSummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(count_);
  s.p50 = percentile_of(samples_, 0.50);
  s.p90 = percentile_of(samples_, 0.90);
  s.p99 = percentile_of(samples_, 0.99);
  s.p999 = percentile_of(samples_, 0.999);
  return s;
}

void LatencyRecorder::reset() {
  stride_ = 1;
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
  samples_.clear();
}

}  // namespace tcast::perf
