// Latency percentile recording for the service tier and the load rigs.
//
// Tail latency (p99/p999) is the service's robustness currency: a mean
// hides exactly the overload behaviour the tcastd PR is about. The
// recorder keeps min/max/mean exactly over every sample and a bounded
// systematic sample (stride-doubling decimation: when the buffer fills,
// drop every other retained sample and double the keep-stride) for the
// percentiles — memory stays O(cap) over arbitrarily long runs while the
// retained points remain uniformly spaced over the sample sequence, so
// quantile estimates stay unbiased for stationary streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcast::perf {

struct PercentileSummary {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Quantile q in [0, 1] of an UNSORTED sample set by nearest-rank with
/// linear interpolation; 0 for an empty set. Copies + sorts internally.
double percentile_of(std::vector<std::uint64_t> samples, double q);

class LatencyRecorder {
 public:
  /// `max_samples` bounds the retained sample buffer (>= 2).
  explicit LatencyRecorder(std::size_t max_samples = 1 << 16);

  void record(std::uint64_t value_us);

  std::uint64_t count() const { return count_; }

  /// Percentiles from the retained sample, exact min/max/mean/count.
  PercentileSummary summarize() const;

  void reset();

 private:
  std::size_t cap_;
  std::uint64_t stride_ = 1;  ///< keep every stride-th observation
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
  std::vector<std::uint64_t> samples_;
};

}  // namespace tcast::perf
