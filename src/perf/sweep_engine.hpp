// Batched figure-sweep engine.
//
// Every figure bench is the same shape: for each sweep point (an (x, t)
// pair with its own experiment id), run `trials` Monte-Carlo trials of one
// registry algorithm on a fresh ExactChannel and average the query counts.
// Running that point-by-point through run_trials() reconstructs an
// ExactChannel — participant list, ground-truth set, capture model — from
// scratch for every single trial, and that construction is what the figure
// binaries actually spend their time on.
//
// run_query_sweep() runs the whole (grid × trials) sweep in one call: the
// flattened trial space fans out across the pool, and each worker thread
// keeps ONE ExactChannel workspace that it re-seeds per trial
// (assign_random_positives + rebind_rng) instead of reconstructing.
//
// Determinism contract: bit-identical to the per-point run_trials() loop.
// Trial (p, i) draws from RngStream(seed, trial_stream_id(points[p].
// experiment_id, i)) — the same stream the unbatched path used — the
// re-seeding consumes exactly the draw sequence of the fresh-construction
// path, and per-point reduction walks trials in order, so neither the
// worker count nor the batching is observable in the output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "core/round_engine.hpp"
#include "group/exact_channel.hpp"

namespace tcast::perf {

/// Deterministic experiment-id for a sweep point, namespacing the RNG
/// streams per (figure, series, x). The formula every figure binary has
/// used since PR 0 — changing it would renumber all trial streams.
constexpr std::uint64_t sweep_point_id(std::uint64_t figure,
                                       std::uint64_t series,
                                       std::uint64_t x) {
  return figure * 1000000 + series * 10000 + x;
}

/// One sweep point: a ground-truth size, a threshold, and the experiment id
/// that namespaces its trial streams.
struct SweepPoint {
  std::size_t x = 0;                 ///< positives drawn per trial
  std::size_t t = 0;                 ///< threshold queried
  std::uint64_t experiment_id = 0;   ///< usually sweep_point_id(...)
};

struct QuerySweepSpec {
  std::string algorithm = "2tbins";  ///< registry name (core/registry.hpp)
  std::size_t n = 0;                 ///< participants per trial
  std::vector<SweepPoint> points;
  std::size_t trials = 1000;
  std::uint64_t seed = 0x7ca57ca57ca57ca5ULL;
  group::ExactChannel::Config channel;  ///< model / capture / fast path
  core::EngineOptions engine;           ///< paper accounting defaults
  ThreadPool* pool = nullptr;           ///< nullptr = global pool
};

struct QuerySweepResult {
  /// One per spec.points entry: query-count statistics over the trials,
  /// reduced in trial order.
  std::vector<RunningStats> queries;
};

/// Runs the whole sweep. Aborts (TCAST_CHECK) on an unknown algorithm name.
QuerySweepResult run_query_sweep(const QuerySweepSpec& spec);

}  // namespace tcast::perf
