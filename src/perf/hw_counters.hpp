// Hardware performance counters for the micro-bench tier, via
// perf_event_open(2).
//
// One HwCounters instance owns a counter group of LLC misses
// (PERF_COUNT_HW_CACHE_MISSES — the generalized last-level-cache miss
// event) and branch mispredictions (PERF_COUNT_HW_BRANCH_MISSES), counting
// this process's user-space execution on any CPU. The harness brackets one
// extra repetition of a benchmark body with start()/stop() and attaches
// the totals to the result as *optional* fields: tools/compare_bench.py
// reports them next to the timing deltas but never gates on them — cache
// and branch counters are diagnostic context for a timing regression, not
// a regression signal of their own (they vary across
// microarchitectures and are unavailable on many CI hosts).
//
// Graceful degradation is the contract: when perf_event_open is absent
// (non-Linux), forbidden (perf_event_paranoid, seccomp — the common case
// in containers), or the PMU lacks the events, available() is false,
// start() is a no-op and stop() returns an empty map. Nothing in the bench
// pipeline may fail because counters could not be opened.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace tcast::perf {

class HwCounters {
 public:
  /// Tries to open the counter group; never throws or aborts on failure.
  HwCounters();
  ~HwCounters();

  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True when at least the LLC-miss leader opened.
  bool available() const { return group_fd_ >= 0; }

  /// Resets and enables the group (no-op when unavailable).
  void start();

  /// Disables the group and returns the counts since start():
  /// {"llc_misses": …} plus {"branch_misses": …} when that event opened.
  /// Empty when unavailable.
  std::map<std::string, double> stop();

 private:
  int group_fd_ = -1;   ///< leader: LLC misses
  int branch_fd_ = -1;  ///< sibling: branch misses
  std::uint64_t llc_id_ = 0;
  std::uint64_t branch_id_ = 0;
};

}  // namespace tcast::perf
