#include "core/counting.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "core/abns.hpp"
#include "core/aggregate.hpp"
#include "core/count_estimation.hpp"
#include "core/two_t_bins.hpp"
#include "group/binning.hpp"

namespace tcast::core {

namespace {

/// One sampled-inclusion probe on `participants`; a 2+ capture is a decoded
/// positive identity, appended to `confirmed`.
group::BinQueryResult probe(group::QueryChannel& channel,
                            std::span<const NodeId> participants, double q,
                            RngStream& rng, std::vector<NodeId>& confirmed) {
  const auto bin = group::BinAssignment::sampled(participants, q, rng);
  const auto result = channel.query_set(bin.bin(0));
  if (result.kind == group::BinQueryResult::Kind::kCaptured)
    confirmed.push_back(result.captured);
  return result;
}

/// Hoeffding-sized repeat count for the refinement phase: |ŝ − s| ≤ γ with
/// probability ≥ 1 − 2·exp(−2Rγ²). Near the operating point s ≈ 1/2 a γ
/// deviation of the silence rate becomes ≈ 2γ/ln2 ≈ 2.9γ relative error of
/// x̂ (|dx/ds| = 1/(s·|ln(1−q*)|) ≈ 2x/ln2 at s = 1/2, q*x ≈ ln2), so
/// hitting ε needs γ ≈ ε/3 and R ≈ ln(2/δ)·(3/ε)²/2. We keep an extra
/// safety factor (the rough scan only pins q* within a factor ≈ 2 of the
/// ideal point, degrading the constant) and clamp to a sane range.
std::size_t refinement_repeats(double epsilon, double delta) {
  const double eps = std::clamp(epsilon, 0.05, 1.0);
  const double del = std::clamp(delta, 1e-6, 0.5);
  return static_cast<std::size_t>(
      std::clamp(std::ceil(4.5 * std::log(2.0 / del) / (eps * eps)),
                 8.0, 128.0));
}

void dedupe(std::vector<NodeId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

bool cancel_tripped(const CountOptions& opts) {
  return opts.engine.cancel != nullptr && opts.engine.cancel->cancelled();
}

}  // namespace

CountOutcome run_newport_zheng_count(group::QueryChannel& channel,
                                     std::span<const NodeId> participants,
                                     RngStream& rng,
                                     const CountOptions& opts) {
  CountOutcome out;
  const QueryCount start = channel.queries_used();
  const double n = static_cast<double>(participants.size());
  if (participants.empty()) {
    out.exact = !channel.lossy();
    out.confidence = out.exact ? 1.0 : 0.0;
    return out;
  }

  // Anchor: one whole-set query. On a lossless channel silence here proves
  // x = 0 exactly; under loss it is only evidence, so exactness is gated.
  const auto anchor = channel.query_set(participants);
  if (anchor.kind == group::BinQueryResult::Kind::kCaptured)
    out.confirmed.push_back(anchor.captured);
  if (!anchor.nonempty()) {
    out.exact = !channel.lossy();
    out.confidence = out.exact ? 1.0 : 0.0;
    out.estimate = 0.0;
    out.queries = channel.queries_used() - start;
    return out;
  }

  // Phase 1 — rough doubling scan: probe at inclusion q = 2^-i until most
  // probes fall silent. P(silence) = (1−q)^x crosses 1/2 around qx ≈ ln2,
  // so the stopping level gives x ≲ 2^(level+1) up to a constant factor.
  constexpr std::size_t kScanProbes = 3;
  double q = 1.0;
  std::size_t level = 0;
  const auto max_levels =
      static_cast<std::size_t>(std::ceil(std::log2(n + 1.0))) + 2;
  for (; level < max_levels; ++level) {
    q /= 2.0;
    std::size_t silent = 0;
    for (std::size_t r = 0; r < kScanProbes; ++r) {
      if (cancel_tripped(opts)) {
        out.cancelled = true;
        out.queries = channel.queries_used() - start;
        return out;
      }
      if (!probe(channel, participants, q, rng, out.confirmed).nonempty())
        ++silent;
    }
    ++out.rounds;
    if (2 * silent >= kScanProbes) break;
  }
  const double rough = std::min(n, std::exp2(static_cast<double>(level) + 1));

  // Phase 2 — refinement at the maximum-information operating point:
  // q* solves (1−q*)^rough = 1/2, where d/dx of the silence rate is
  // steepest relative to its binomial noise.
  const double qstar =
      std::clamp(1.0 - std::exp2(-1.0 / rough), 1e-9, 1.0 - 1e-9);
  const std::size_t repeats = refinement_repeats(opts.epsilon, opts.delta);
  std::size_t silent = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    if (cancel_tripped(opts)) {
      out.cancelled = true;
      out.queries = channel.queries_used() - start;
      return out;
    }
    if (!probe(channel, participants, qstar, rng, out.confirmed).nonempty())
      ++silent;
  }
  ++out.rounds;

  const double shat =
      static_cast<double>(silent) / static_cast<double>(repeats);
  double estimate;
  if (silent == 0) {
    estimate = 2.0 * rough;  // beyond resolution upward; clamp settles it
  } else if (silent == repeats) {
    estimate = 1.0;  // the anchor saw activity, so x ≥ 1
  } else {
    estimate = std::log(shat) / std::log(1.0 - qstar);
  }
  out.estimate = std::clamp(estimate, 1.0, n);
  out.epsilon = std::clamp(opts.epsilon, 0.05, 1.0);
  out.confidence = 1.0 - std::clamp(opts.delta, 1e-6, 0.5);
  out.queries = channel.queries_used() - start;
  return out;
}

CountOutcome run_geom_scan_count(group::QueryChannel& channel,
                                 std::span<const NodeId> participants,
                                 RngStream& rng, const CountOptions& opts) {
  CountOutcome out;
  CountEstimateOptions eopts;
  // Size the refinement like nz-geom so the (epsilon, delta) knobs mean the
  // same thing across the sampling estimators; the scan-phase defaults stay.
  eopts.refine_repeats = refinement_repeats(opts.epsilon, opts.delta);
  const auto est = estimate_positive_count(channel, participants, rng, eopts);
  out.estimate = est.estimate;
  out.queries = est.queries;
  out.confirmed = est.confirmed;
  out.exact = est.exact && !channel.lossy();
  if (est.inclusion_used > 0.0 && est.inclusion_used < 1.0)
    out.rounds = static_cast<std::size_t>(
        std::lround(-std::log2(est.inclusion_used)));
  if (out.exact) {
    out.confidence = 1.0;
  } else {
    // The accuracy claim is empirical for this estimator (its refinement
    // level is picked by observed rate, not by an analytic q*); the
    // statistical monitor audits it at the same (epsilon, delta) as nz-geom.
    out.epsilon = std::clamp(opts.epsilon, 0.05, 1.0);
    out.confidence = 1.0 - std::clamp(opts.delta, 1e-6, 0.5);
  }
  return out;
}

CountOutcome run_beep_exact_count(group::QueryChannel& channel,
                                  std::span<const NodeId> participants,
                                  RngStream& rng, const CountOptions&) {
  CountOutcome out;
  const auto count = run_exact_count(channel, participants, rng);
  out.estimate = static_cast<double>(count.count);
  out.queries = count.queries;
  out.confirmed = count.identified_ids;
  // Splitting trusts silence to discard subtrees, so under loss the count
  // is only a lower bound and exactness must not be claimed.
  out.exact = !channel.lossy();
  out.confidence = out.exact ? 1.0 : 0.0;
  return out;
}

const std::vector<CountAlgorithmSpec>& counting_registry() {
  static const std::vector<CountAlgorithmSpec> registry = [] {
    std::vector<CountAlgorithmSpec> specs;
    specs.push_back(
        {"nz-geom",
         "Newport–Zheng geometric-phase (1±ε) approximate count (1+ model)",
         false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            RngStream& rng, const CountOptions& opts) {
           return run_newport_zheng_count(ch, nodes, rng, opts);
         }});
    specs.push_back(
        {"geom-scan",
         "geometric-scan estimator (Sec. V-D sampling idea iterated)", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            RngStream& rng, const CountOptions& opts) {
           return run_geom_scan_count(ch, nodes, rng, opts);
         }});
    specs.push_back(
        {"beep-exact",
         "Casteigts-style exact beeping count (adaptive splitting)", true,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            RngStream& rng, const CountOptions& opts) {
           return run_beep_exact_count(ch, nodes, rng, opts);
         }});
    return specs;
  }();
  return registry;
}

const CountAlgorithmSpec* find_counting_algorithm(std::string_view name) {
  for (const auto& spec : counting_registry())
    if (spec.name == name) return &spec;
  return nullptr;
}

ThresholdOutcome run_threshold_via_count(group::QueryChannel& channel,
                                         std::span<const NodeId> participants,
                                         std::size_t t, RngStream& rng,
                                         std::string_view estimator,
                                         const EngineOptions& opts) {
  const auto* cspec = find_counting_algorithm(estimator);
  TCAST_CHECK_MSG(cspec != nullptr, "unknown counting algorithm name");

  ThresholdOutcome out;
  out.remaining_candidates = participants.size();
  // Degenerate thresholds resolve for free, like every engine algorithm.
  if (t == 0) {
    out.decision = true;
    return out;
  }
  if (participants.size() < t) {
    out.decision = false;
    return out;
  }

  const QueryCount start = channel.queries_used();
  CountOptions copts;
  copts.engine = opts;
  auto count = cspec->run(channel, participants, rng, copts);
  dedupe(count.confirmed);

  // A cancelled estimation (or a token that tripped during an estimator
  // that does not poll it) must not flow into a verdict.
  if (count.cancelled ||
      (opts.cancel != nullptr && opts.cancel->cancelled())) {
    out.cancelled = true;
    out.queries = channel.queries_used() - start;
    out.rounds = count.rounds;
    return out;
  }

  if (count.exact && !channel.lossy()) {
    // A proven count answers the threshold directly.
    out.decision =
        count.estimate >= static_cast<double>(t) - 0.5;  // integer compare
    out.queries = channel.queries_used() - start;
    out.rounds = count.rounds;
    out.confirmed_positives = count.confirmed.size();
    out.remaining_candidates = 0;
    return out;
  }

  // Approximate path: the estimate picks the shape of an exact verification
  // session, but never the verdict. Captured identities from estimation are
  // credited against t and excluded from the session (they are kConfirmed on
  // the channel; re-announcing them would be a conformance violation) — the
  // prob-abns hint pattern, generalised.
  std::vector<NodeId> rest;
  rest.reserve(participants.size());
  for (const NodeId id : participants)
    if (!std::binary_search(count.confirmed.begin(), count.confirmed.end(),
                            id))
      rest.push_back(id);
  const std::size_t credit = count.confirmed.size();

  if (credit >= t) {
    out.decision = true;
    out.rounds = count.rounds;
    out.confirmed_positives = credit;
    out.remaining_candidates = rest.size();
    out.queries = channel.queries_used() - start;
    return out;
  }

  const std::size_t remaining_t = t - credit;
  ThresholdOutcome session;
  // Widen the claimed band before trusting it for *shape* selection: the
  // (1±ε) claim is only w.h.p., and a session seeded from a bad estimate
  // must still be correct, just slower. ABNS seeded with x̂ when the
  // estimate is far below the bar (bulk elimination from a good seed);
  // 2tBins when t could plausibly be within reach (near-oracle for x ≥ t).
  const double widen = 2.0 * (1.0 + count.epsilon);
  if (count.estimate * widen < static_cast<double>(remaining_t)) {
    session = run_abns(channel, rest, remaining_t, rng,
                       AbnsOptions{std::max(1.0, count.estimate)}, opts);
  } else {
    session = run_two_t_bins(channel, rest, remaining_t, rng, opts);
  }
  out = session;
  out.confirmed_positives = session.confirmed_positives + credit;
  out.queries = channel.queries_used() - start;
  return out;
}

double sampling_estimator_query_bound(std::size_t n) {
  // Anchor + scan (max(probe defaults) per level over ≤ ⌈log2(n+1)⌉+3
  // levels) + the largest refinement either sampling estimator can be
  // configured to by CountOptions clamps, plus slack.
  const double levels =
      std::ceil(std::log2(static_cast<double>(n) + 1.0)) + 3.0;
  return 1.0 + 6.0 * levels + 128.0 + 8.0;
}

double beep_exact_query_bound(std::size_t n) {
  // Splitting explores a binary tree over n leaves: ≤ 2n − 1 interval
  // nodes, and each capture re-query removes a node permanently, adding at
  // most n more. 2n·(log2(n)+2) is far above both terms combined; validated
  // against adversarial cases in tests/core/counting_test.
  const double nn = static_cast<double>(std::max<std::size_t>(n, 1));
  return 2.0 * nn * (std::log2(nn) + 2.0) + 8.0;
}

}  // namespace tcast::core
