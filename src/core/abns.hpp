// Algorithm 3: Adaptive Bin Number Selection (ABNS).
//
// Maintains a running estimate p of the positive count: each round uses
// b = p + 1 bins (the Eq.-4 optimum), then refines p from the observed
// number of empty bins via Eq. 6. The initial estimate p0 is the knob the
// paper studies (p0 = t vs p0 = 2t, Fig. 5) and what Probabilistic ABNS
// improves with a one-query sampling hint.
#pragma once

#include "core/round_engine.hpp"

namespace tcast::core {

struct AbnsOptions {
  double p0 = 0.0;  ///< initial estimate of x; callers pass t or 2t
};

class AbnsPolicy final : public BinCountPolicy {
 public:
  explicit AbnsPolicy(AbnsOptions opts);

  std::size_t initial_bins(std::span<const NodeId> candidates,
                           std::size_t threshold) override;
  std::size_t next_bins(const RoundStats& stats,
                        std::span<const NodeId> candidates) override;

  double current_estimate() const { return p_; }

 private:
  static std::size_t bins_from_estimate(double p);

  double p_;
};

/// Runs ABNS with initial estimate opts.p0 (defaulting to 2t when 0).
ThresholdOutcome run_abns(group::QueryChannel& channel,
                          std::span<const NodeId> participants, std::size_t t,
                          RngStream& rng, AbnsOptions abns = {},
                          const EngineOptions& opts = {});

/// Lane-reuse variant: the same session on a caller-owned engine (already
/// rebind()-targeted), recycling its round workspaces across trials.
/// Outcome- and draw-identical to the channel overload.
ThresholdOutcome run_abns(RoundEngine& engine,
                          std::span<const NodeId> participants, std::size_t t,
                          AbnsOptions abns = {});

}  // namespace tcast::core
