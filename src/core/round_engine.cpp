#include "core/round_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/check.hpp"

namespace tcast::core {

std::optional<RetryPolicy> RetryPolicy::parse(std::string_view text) {
  const auto number = [](std::string_view v) -> std::optional<double> {
    if (v.empty()) return std::nullopt;
    const std::string buf(v);
    char* end = nullptr;
    const double d = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    return d;
  };
  if (text == "none") return none();
  if (text.starts_with("fixed:")) {
    const auto r = number(text.substr(6));
    if (!r || *r < 0 || *r != std::floor(*r)) return std::nullopt;
    return fixed(static_cast<std::size_t>(*r));
  }
  if (text.starts_with("adaptive:")) {
    auto rest = text.substr(9);
    const auto colon = rest.find(':');
    const auto target = number(rest.substr(0, colon));
    if (!target || *target <= 0.0 || *target >= 1.0) return std::nullopt;
    std::size_t cap = 8;
    if (colon != std::string_view::npos) {
      const auto c = number(rest.substr(colon + 1));
      if (!c || *c < 1 || *c != std::floor(*c)) return std::nullopt;
      cap = static_cast<std::size_t>(*c);
    }
    return adaptive(*target, cap);
  }
  return std::nullopt;
}

std::string RetryPolicy::spec() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kFixed:
      return "fixed:" + std::to_string(retries);
    case Kind::kAdaptive: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "adaptive:%g:%zu", target_residual,
                    max_retries);
      return buf;
    }
  }
  return "none";
}

RoundEngine::RoundEngine(group::QueryChannel& channel, RngStream& rng,
                         EngineOptions opts)
    : channel_(&channel), rng_(&rng), opts_(opts) {}

std::size_t RoundEngine::clamp_bins(std::size_t b,
                                    std::size_t candidates) const {
  return std::clamp<std::size_t>(b, 1, std::max<std::size_t>(1, candidates));
}

void RoundEngine::make_assignment(std::span<NodeId> candidates,
                                  std::size_t bins,
                                  group::BinAssignment& out) {
  switch (opts_.scheme) {
    case BinningScheme::kContiguous:
      out.assign_contiguous(candidates, bins);
      return;
    case BinningScheme::kRandomEqual:
      break;
  }
  // In-place: candidates_ is rebuilt from the alive words after every
  // round, so permuting it here is free (and skips the scratch copy).
  out.assign_random_equal_inplace(candidates, bins, *rng_);
}

void RoundEngine::query_order(const group::BinAssignment& a,
                              std::vector<std::size_t>& order) const {
  const std::size_t bins = a.bin_count();
  order.resize(bins);
  if (opts_.ordering != BinOrdering::kNonEmptyFirst) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    return;
  }
  // Stable two-bucket partition on a 0/1 key — exactly what the historical
  // stable_sort(nonempty desc) produced, in one linear pass: non-empty bins
  // in index order, then empty bins in index order. Channels with a batched
  // whole-assignment count cache answer both passes from one array (which
  // writes every order slot, so no iota prefill needed).
  if (const std::uint32_t* counts = channel_->oracle_bin_counts(a)) {
    std::size_t next = 0;
    for (std::size_t i = 0; i < bins; ++i)
      if (counts[i] != 0) order[next++] = i;
    for (std::size_t i = 0; i < bins; ++i)
      if (counts[i] == 0) order[next++] = i;
    return;
  }
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Idealised accounting needs ground truth; degrade gracefully without it.
  nonempty_.assign(bins, 0);
  for (std::size_t i = 0; i < bins; ++i) {
    const auto count = channel_->oracle_positive_count(a, i);
    if (!count) return;  // realistic channel: natural order
    nonempty_[i] = *count > 0 ? 1 : 0;
  }
  std::size_t next = 0;
  for (std::size_t i = 0; i < bins; ++i)
    if (nonempty_[i]) order[next++] = i;
  for (std::size_t i = 0; i < bins; ++i)
    if (!nonempty_[i]) order[next++] = i;
}

ThresholdOutcome RoundEngine::run(std::span<const NodeId> participants,
                                  std::size_t threshold,
                                  BinCountPolicy& policy) {
  ThresholdOutcome out;
  const QueryCount queries_at_start = channel_->queries_used();
  const auto finish = [&](bool decision, std::size_t alive_count) {
    out.decision = decision;
    out.queries = channel_->queries_used() - queries_at_start;
    out.remaining_candidates = alive_count;
    return out;
  };
  // Cancellation is polled before every query (the engine's unit of work),
  // so a blown deadline aborts mid-round without fabricating a verdict.
  const auto cancelled = [&] {
    return opts_.cancel != nullptr && opts_.cancel->cancelled();
  };
  const auto cancel_finish = [&](std::size_t alive_count) {
    out.cancelled = true;
    return finish(false, alive_count);
  };

  if (threshold == 0) return finish(true, participants.size());
  if (participants.size() < threshold) return finish(false, participants.size());

  // Alive set as packed words: removal is a bit clear, and disposing a whole
  // silent bin is a word-level ANDNOT against the assignment's bin image.
  // The common case — participants are exactly [0, n), the whole-universe
  // span every channel hands out — is detected by one strictly-increasing
  // scan (which also subsumes the duplicate check) and filled as whole
  // words instead of n single-bit inserts.
  bool iota = !participants.empty() && participants.front() == 0;
  for (std::size_t i = 1; iota && i < participants.size(); ++i)
    iota = participants[i] == static_cast<NodeId>(i);
  if (iota) {
    alive_.reset(participants.size());
    alive_.fill_prefix(participants.size());
  } else {
    NodeId max_id = 0;
    for (const NodeId id : participants) max_id = std::max(max_id, id);
    alive_.reset(static_cast<std::size_t>(max_id) + 1);
    for (const NodeId id : participants) alive_.insert(id);
    TCAST_CHECK_MSG(alive_.count() == participants.size(),
                    "duplicate participant ids");
  }
  std::size_t alive_count = participants.size();
  candidates_.assign(participants.begin(), participants.end());

  std::size_t confirmed = 0;
  std::size_t bins = clamp_bins(policy.initial_bins(candidates_, threshold),
                                alive_count);

  // Soundness gate: the "activity ⇒ ≥2" credit assumes a lone reply always
  // decodes. On a channel that declares itself lossy a lone reply may fail
  // to decode (and read as activity), so the inference would manufacture
  // positives — auto-disable it there, whatever the options say.
  const bool lossy_channel = channel_->lossy();
  const std::size_t activity_lb =
      (channel_->model() == group::CollisionModel::kTwoPlus &&
       opts_.two_plus_activity_counts_two &&
       (!lossy_channel || opts_.unsafe_counts_two_despite_loss))
          ? 2
          : 1;

  // Retry state (only consulted on lossy channels). The adaptive policy
  // estimates the false-empty rate from contradicted silences — a silent
  // bin that answers on re-query was a lost reply — and sizes the retry
  // budget so p̂^(1+retries) ≤ target_residual.
  const bool retry_enabled =
      lossy_channel && opts_.retry.kind != RetryPolicy::Kind::kNone;
  std::size_t empties_observed = 0;  // silent results seen (retry path)
  std::size_t losses_caught = 0;     // silences contradicted by a re-query
  const auto retry_budget = [&]() -> std::size_t {
    switch (opts_.retry.kind) {
      case RetryPolicy::Kind::kNone:
        return 0;
      case RetryPolicy::Kind::kFixed:
        return opts_.retry.retries;
      case RetryPolicy::Kind::kAdaptive: {
        // Laplace-smoothed estimate; pessimistic while data is scarce.
        const double p_hat = (static_cast<double>(losses_caught) + 1.0) /
                             (static_cast<double>(empties_observed) + 2.0);
        const double attempts =
            std::ceil(std::log(opts_.retry.target_residual) /
                      std::log(p_hat));
        const auto extra =
            attempts <= 1.0 ? std::size_t{1}
                            : static_cast<std::size_t>(attempts) - 1;
        return std::clamp<std::size_t>(extra, 1, opts_.retry.max_retries);
      }
    }
    return 0;
  };

  for (std::size_t round = 0; round < opts_.max_rounds; ++round) {
    ++out.rounds;
    make_assignment(candidates_, bins, assignment_);
    const auto& assignment = assignment_;
    channel_->announce(assignment);
    query_order(assignment, order_);

    RoundStats stats;
    stats.round_index = round;
    stats.bins = assignment.bin_count();
    stats.candidates_before = alive_count;
    std::size_t round_lb = 0;  // positives certified by this round's bins

    for (const std::size_t idx : order_) {
      if (cancelled()) return cancel_finish(alive_count);
      auto result = channel_->query_bin(assignment, idx);
      ++stats.bins_queried;
      if (result.kind == group::BinQueryResult::Kind::kEmpty &&
          retry_enabled) {
        // Silence on a lossy channel proves nothing yet: re-query before
        // the disposal commits. Any non-empty answer supersedes it.
        ++empties_observed;
        const std::size_t budget = retry_budget();
        for (std::size_t attempt = 0; attempt < budget; ++attempt) {
          if (cancelled()) return cancel_finish(alive_count);
          ++out.retries;
          const auto again = channel_->query_bin(assignment, idx);
          if (again.kind != group::BinQueryResult::Kind::kEmpty) {
            ++losses_caught;
            ++out.faults_seen;
            result = again;
            break;
          }
        }
      }
      switch (result.kind) {
        case group::BinQueryResult::Kind::kEmpty:
          ++stats.empty_bins;
          // Dispose the whole silent bin. The bins partition this round's
          // candidates and removals only ever touch the queried bin, so the
          // word ANDNOT and the per-member walk remove the same nodes.
          if (assignment.has_bin_words()) {
            alive_count -= alive_.remove_words(assignment.bin_words(idx));
          } else {
            for (const NodeId id : assignment.bin(idx))
              if (alive_.erase(id)) --alive_count;
          }
          break;
        case group::BinQueryResult::Kind::kActivity:
          ++stats.nonempty_bins;
          round_lb += activity_lb;
          break;
        case group::BinQueryResult::Kind::kCaptured: {
          ++stats.nonempty_bins;
          ++stats.captured;
          const NodeId id = result.captured;
          TCAST_CHECK_MSG(id != kNoNode, "captured result without identity");
          if (alive_.erase(id)) --alive_count;
          ++confirmed;
          break;
        }
      }
      out.confirmed_positives = confirmed;
      if (confirmed + round_lb >= threshold)  // Alg. 1 line 11, generalised
        return finish(true, alive_count);
      if (confirmed + alive_count < threshold)  // Alg. 1 line 14, generalised
        return finish(false, alive_count);
    }

    // Round completed without a decision: rebuild candidates from the word
    // image (one countr_zero walk instead of an all-ids scan), consult the
    // policy for the next bin count.
    candidates_.clear();
    alive_.append_members(candidates_);
    TCAST_CHECK(candidates_.size() == alive_count);

    stats.candidates_after = alive_count;
    stats.remaining_threshold = threshold - confirmed;
    std::size_t next = policy.next_bins(stats, candidates_);
    // Anti-livelock: a round that eliminated nothing and captured nothing
    // must not repeat with the same (or smaller) bin count — every-bin-
    // non-empty rounds carry zero information at fixed b.
    const bool progress = stats.empty_bins > 0 || stats.captured > 0;
    if (!progress && next <= bins) next = bins * 2;
    bins = clamp_bins(next, alive_count);
  }
  TCAST_CHECK_MSG(false, "round engine exceeded max_rounds");
  return out;  // unreachable
}

}  // namespace tcast::core
