#include "core/round_engine.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace tcast::core {

RoundEngine::RoundEngine(group::QueryChannel& channel, RngStream& rng,
                         EngineOptions opts)
    : channel_(&channel), rng_(&rng), opts_(opts) {}

std::size_t RoundEngine::clamp_bins(std::size_t b,
                                    std::size_t candidates) const {
  return std::clamp<std::size_t>(b, 1, std::max<std::size_t>(1, candidates));
}

group::BinAssignment RoundEngine::make_assignment(
    std::span<const NodeId> candidates, std::size_t bins) {
  switch (opts_.scheme) {
    case BinningScheme::kContiguous:
      return group::BinAssignment::contiguous(candidates, bins);
    case BinningScheme::kRandomEqual:
      break;
  }
  return group::BinAssignment::random_equal(candidates, bins, *rng_);
}

std::vector<std::size_t> RoundEngine::query_order(
    const group::BinAssignment& a) const {
  std::vector<std::size_t> order(a.bin_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (opts_.ordering != BinOrdering::kNonEmptyFirst) return order;
  // Idealised accounting needs ground truth; degrade gracefully without it.
  std::vector<char> nonempty(a.bin_count(), 0);
  for (std::size_t i = 0; i < a.bin_count(); ++i) {
    const auto count = channel_->oracle_positive_count(a.bin(i));
    if (!count) return order;  // realistic channel: natural order
    nonempty[i] = *count > 0 ? 1 : 0;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&nonempty](std::size_t lhs, std::size_t rhs) {
                     return nonempty[lhs] > nonempty[rhs];
                   });
  return order;
}

ThresholdOutcome RoundEngine::run(std::span<const NodeId> participants,
                                  std::size_t threshold,
                                  BinCountPolicy& policy) {
  ThresholdOutcome out;
  const QueryCount queries_at_start = channel_->queries_used();
  const auto finish = [&](bool decision, std::size_t alive_count) {
    out.decision = decision;
    out.queries = channel_->queries_used() - queries_at_start;
    out.remaining_candidates = alive_count;
    return out;
  };

  if (threshold == 0) return finish(true, participants.size());
  if (participants.size() < threshold) return finish(false, participants.size());

  // Alive set, indexed by node id for O(1) removal.
  NodeId max_id = 0;
  for (const NodeId id : participants) max_id = std::max(max_id, id);
  std::vector<char> alive(static_cast<std::size_t>(max_id) + 1, 0);
  for (const NodeId id : participants)
    alive[static_cast<std::size_t>(id)] = 1;
  std::size_t alive_count = participants.size();
  std::vector<NodeId> candidates(participants.begin(), participants.end());

  std::size_t confirmed = 0;
  std::size_t bins = clamp_bins(policy.initial_bins(candidates, threshold),
                                alive_count);

  const std::size_t activity_lb =
      (channel_->model() == group::CollisionModel::kTwoPlus &&
       opts_.two_plus_activity_counts_two)
          ? 2
          : 1;

  for (std::size_t round = 0; round < opts_.max_rounds; ++round) {
    ++out.rounds;
    const auto assignment = make_assignment(candidates, bins);
    channel_->announce(assignment);
    const auto order = query_order(assignment);

    RoundStats stats;
    stats.round_index = round;
    stats.bins = assignment.bin_count();
    stats.candidates_before = alive_count;
    std::size_t round_lb = 0;  // positives certified by this round's bins

    for (const std::size_t idx : order) {
      const auto result = channel_->query_bin(assignment, idx);
      ++stats.bins_queried;
      switch (result.kind) {
        case group::BinQueryResult::Kind::kEmpty:
          ++stats.empty_bins;
          for (const NodeId id : assignment.bin(idx)) {
            if (alive[static_cast<std::size_t>(id)]) {
              alive[static_cast<std::size_t>(id)] = 0;
              --alive_count;
            }
          }
          break;
        case group::BinQueryResult::Kind::kActivity:
          ++stats.nonempty_bins;
          round_lb += activity_lb;
          break;
        case group::BinQueryResult::Kind::kCaptured: {
          ++stats.nonempty_bins;
          ++stats.captured;
          const NodeId id = result.captured;
          TCAST_CHECK_MSG(id != kNoNode, "captured result without identity");
          if (alive[static_cast<std::size_t>(id)]) {
            alive[static_cast<std::size_t>(id)] = 0;
            --alive_count;
          }
          ++confirmed;
          break;
        }
      }
      out.confirmed_positives = confirmed;
      if (confirmed + round_lb >= threshold)  // Alg. 1 line 11, generalised
        return finish(true, alive_count);
      if (confirmed + alive_count < threshold)  // Alg. 1 line 14, generalised
        return finish(false, alive_count);
    }

    // Round completed without a decision: rebuild candidates, consult the
    // policy for the next bin count.
    candidates.clear();
    for (std::size_t id = 0; id < alive.size(); ++id)
      if (alive[id]) candidates.push_back(static_cast<NodeId>(id));
    TCAST_CHECK(candidates.size() == alive_count);

    stats.candidates_after = alive_count;
    stats.remaining_threshold = threshold - confirmed;
    std::size_t next = policy.next_bins(stats, candidates);
    // Anti-livelock: a round that eliminated nothing and captured nothing
    // must not repeat with the same (or smaller) bin count — every-bin-
    // non-empty rounds carry zero information at fixed b.
    const bool progress = stats.empty_bins > 0 || stats.captured > 0;
    if (!progress && next <= bins) next = bins * 2;
    bins = clamp_bins(next, alive_count);
  }
  TCAST_CHECK_MSG(false, "round engine exceeded max_rounds");
  return out;  // unreachable
}

}  // namespace tcast::core
