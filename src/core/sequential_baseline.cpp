#include "core/sequential_baseline.hpp"

namespace tcast::core {

SequentialBaselineOutcome run_sequential_baseline(std::size_t n,
                                                  std::size_t x,
                                                  std::size_t t,
                                                  RngStream& rng) {
  SequentialBaselineOutcome out;
  out.detail = mac::run_sequential_feedback(n, x, t, rng);
  out.outcome.decision = out.detail.decision;
  out.outcome.queries = out.detail.slots;
  out.outcome.rounds = 1;
  out.outcome.remaining_candidates = n - out.detail.slots;
  return out;
}

}  // namespace tcast::core
