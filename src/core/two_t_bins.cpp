#include "core/two_t_bins.hpp"

namespace tcast::core {

std::size_t TwoTBinsPolicy::initial_bins(std::span<const NodeId> candidates,
                                         std::size_t threshold) {
  (void)candidates;
  return 2 * threshold;
}

std::size_t TwoTBinsPolicy::next_bins(const RoundStats& stats,
                                      std::span<const NodeId> candidates) {
  (void)candidates;
  return 2 * stats.remaining_threshold;
}

ThresholdOutcome run_two_t_bins(group::QueryChannel& channel,
                                std::span<const NodeId> participants,
                                std::size_t t, RngStream& rng,
                                const EngineOptions& opts) {
  RoundEngine engine(channel, rng, opts);
  return run_two_t_bins(engine, participants, t);
}

ThresholdOutcome run_two_t_bins(RoundEngine& engine,
                                std::span<const NodeId> participants,
                                std::size_t t) {
  TwoTBinsPolicy policy;
  return engine.run(participants, t, policy);
}

}  // namespace tcast::core
