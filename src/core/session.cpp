#include "core/session.hpp"

#include "common/check.hpp"

namespace tcast::core {

ThresholdSession::ThresholdSession(group::QueryChannel& channel,
                                   std::span<const NodeId> participants,
                                   RngStream& rng, EngineOptions opts)
    : channel_(&channel),
      participants_(participants.begin(), participants.end()),
      rng_(&rng),
      opts_(opts) {}

ThresholdOutcome ThresholdSession::tcast(std::size_t t,
                                         std::string_view algorithm) {
  const AlgorithmSpec* spec = find_algorithm(algorithm);
  TCAST_CHECK_MSG(spec != nullptr, "unknown tcast algorithm name");
  return spec->run(*channel_, participants_, t, *rng_, opts_);
}

ProbabilisticOutcome ThresholdSession::probabilistic(double t_l, double t_r,
                                                     std::size_t repeats) {
  ProbabilisticThresholdOptions popts;
  popts.t_l = t_l;
  popts.t_r = t_r;
  popts.repeats = repeats;
  return run_probabilistic_threshold(*channel_, participants_, popts, *rng_);
}

}  // namespace tcast::core
