// Algorithm 1: the 2tBins algorithm.
//
// Every round partitions the surviving candidates into 2t equal-sized
// random bins (t = the *remaining* threshold: in the 2+ model captured
// positives shrink it, which is what lets 2+ "start with a very low number
// of bins in the second round", Sec. IV-C.2). Upper bound:
// 2t · log2(N / 2t) queries; optimal up to a log t factor ([4]).
#pragma once

#include "core/round_engine.hpp"

namespace tcast::core {

class TwoTBinsPolicy final : public BinCountPolicy {
 public:
  std::size_t initial_bins(std::span<const NodeId> candidates,
                           std::size_t threshold) override;
  std::size_t next_bins(const RoundStats& stats,
                        std::span<const NodeId> candidates) override;
};

/// Runs 2tBins over `participants` with threshold `t` on `channel`.
ThresholdOutcome run_two_t_bins(group::QueryChannel& channel,
                                std::span<const NodeId> participants,
                                std::size_t t, RngStream& rng,
                                const EngineOptions& opts = {});

/// Lane-reuse variant: the same session on a caller-owned engine (already
/// rebind()-targeted), recycling its round workspaces across trials.
/// Outcome- and draw-identical to the channel overload.
ThresholdOutcome run_two_t_bins(RoundEngine& engine,
                                std::span<const NodeId> participants,
                                std::size_t t);

}  // namespace tcast::core
