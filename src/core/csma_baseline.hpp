// CSMA baseline adapter: presents the slot-level CSMA feedback model
// (mac/csma_feedback.hpp) through the same outcome type as the tcast
// algorithms, with slots reported in the `queries` field (one slot ≡ one
// query, the paper's common time axis).
#pragma once

#include "core/round_engine.hpp"
#include "mac/csma_feedback.hpp"

namespace tcast::core {

struct CsmaBaselineOutcome {
  ThresholdOutcome outcome;
  mac::CsmaFeedbackResult detail;
};

/// `x` is the ground-truth positive count (the baseline is a cost model —
/// it needs the truth to emulate which nodes contend).
CsmaBaselineOutcome run_csma_baseline(std::size_t n, std::size_t x,
                                      std::size_t t, RngStream& rng,
                                      const mac::CsmaFeedbackConfig& cfg = {});

}  // namespace tcast::core
