#include "core/probabilistic_threshold.hpp"

#include "common/check.hpp"
#include "group/binning.hpp"

namespace tcast::core {

ProbabilisticOutcome run_probabilistic_threshold(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    const ProbabilisticThresholdOptions& opts, RngStream& rng) {
  TCAST_CHECK(opts.t_r > opts.t_l);
  TCAST_CHECK(opts.repeats >= 1);

  ProbabilisticOutcome out;
  out.plan = analysis::make_sampling_plan(opts.t_l, opts.t_r, opts.b_override);
  const double inclusion = 1.0 / out.plan.b;

  for (std::size_t i = 0; i < opts.repeats; ++i) {
    const auto bin =
        group::BinAssignment::sampled(participants, inclusion, rng);
    if (channel.query_set(bin.bin(0)).nonempty()) ++out.nonempty_seen;
  }
  out.queries = opts.repeats;
  out.high_mode = static_cast<double>(out.nonempty_seen) >
                  out.plan.decision_cut(opts.repeats);
  return out;
}

}  // namespace tcast::core
