// The oracle bin-selection baseline (Sec. V-C): assumes exact knowledge of
// x and picks the piecewise-optimal bin count every round. It is the
// paper's lower-bound reference curve in Figs. 5-6 — not a deployable
// algorithm (it needs ground truth, so it only runs on oracle-capable
// channels).
#pragma once

#include "core/round_engine.hpp"

namespace tcast::core {

class OraclePolicy final : public BinCountPolicy {
 public:
  explicit OraclePolicy(const group::QueryChannel& channel)
      : channel_(&channel) {}

  std::size_t initial_bins(std::span<const NodeId> candidates,
                           std::size_t threshold) override;
  std::size_t next_bins(const RoundStats& stats,
                        std::span<const NodeId> candidates) override;

 private:
  std::size_t pick(std::span<const NodeId> candidates,
                   std::size_t threshold) const;

  const group::QueryChannel* channel_;
};

/// Runs the oracle baseline. Requires channel.oracle_positive_count().
ThresholdOutcome run_oracle(group::QueryChannel& channel,
                            std::span<const NodeId> participants,
                            std::size_t t, RngStream& rng,
                            const EngineOptions& opts = {});

/// Lane-reuse variant: the same session on a caller-owned engine (already
/// rebind()-targeted), recycling its round workspaces across trials.
/// Outcome- and draw-identical to the channel overload.
ThresholdOutcome run_oracle(RoundEngine& engine,
                            std::span<const NodeId> participants,
                            std::size_t t);

}  // namespace tcast::core
