#include "core/count_estimation.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "group/binning.hpp"

namespace tcast::core {

namespace {

/// Fraction of `repeats` sampled bins (inclusion q) that answer non-empty;
/// 2+ captures along the way are appended to `confirmed`.
std::size_t count_nonempty(group::QueryChannel& channel,
                           std::span<const NodeId> participants, double q,
                           std::size_t repeats, RngStream& rng,
                           std::vector<NodeId>& confirmed) {
  std::size_t nonempty = 0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const auto bin = group::BinAssignment::sampled(participants, q, rng);
    const auto result = channel.query_set(bin.bin(0));
    if (result.kind == group::BinQueryResult::Kind::kCaptured)
      confirmed.push_back(result.captured);
    if (result.nonempty()) ++nonempty;
  }
  return nonempty;
}

/// Inverts P(non-empty) = 1 − (1 − q)^x for x given the observed rate.
double invert_rate(double rate, double q) {
  rate = std::clamp(rate, 1e-9, 1.0 - 1e-9);
  return std::log(1.0 - rate) / std::log(1.0 - q);
}

}  // namespace

CountEstimate estimate_positive_count(group::QueryChannel& channel,
                                      std::span<const NodeId> participants,
                                      RngStream& rng,
                                      const CountEstimateOptions& opts) {
  TCAST_CHECK(opts.probe_repeats >= 1 && opts.refine_repeats >= 1);
  TCAST_CHECK(opts.target_low > 0.0 && opts.target_high < 1.0 &&
              opts.target_low < opts.target_high);
  CountEstimate out;
  const QueryCount start = channel.queries_used();

  // Level 0: the whole set — settles x = 0 exactly and anchors the scan.
  // (On a lossy channel silence proves nothing; the caller owns that gate —
  // the counting portfolio wrapper clears `exact` when channel.lossy().)
  const auto anchor = channel.query_set(participants);
  if (anchor.kind == group::BinQueryResult::Kind::kCaptured)
    out.confirmed.push_back(anchor.captured);
  if (!anchor.nonempty()) {
    out.exact = true;
    out.estimate = 0.0;
    out.queries = channel.queries_used() - start;
    return out;
  }

  // Scan geometric levels q = 1/2, 1/4, ... until the non-empty rate drops
  // into the informative band; below every level the rate only shrinks.
  double q = 1.0;
  double rate = 1.0;
  const auto max_levels = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(participants.size()) + 1)) + 3);
  for (std::size_t level = 0; level < max_levels; ++level) {
    q /= 2.0;
    const std::size_t hits = count_nonempty(
        channel, participants, q, opts.probe_repeats, rng, out.confirmed);
    rate = static_cast<double>(hits) / static_cast<double>(opts.probe_repeats);
    if (rate <= opts.target_high) break;
  }

  // Refine at the accepted level.
  const std::size_t hits = count_nonempty(
      channel, participants, q, opts.refine_repeats, rng, out.confirmed);
  out.repeats = opts.refine_repeats;
  out.nonempty = hits;
  out.inclusion_used = q;
  const double refined_rate =
      static_cast<double>(hits) / static_cast<double>(opts.refine_repeats);
  // All-empty refinement can only happen by sampling luck (we saw activity
  // at level 0); fall back to the smallest mass distinguishable here.
  out.estimate = hits == 0 ? 1.0 : invert_rate(refined_rate, q);
  out.estimate = std::clamp(out.estimate, 1.0,
                            static_cast<double>(participants.size()));
  out.queries = channel.queries_used() - start;
  return out;
}

const char* to_string(IntervalVerdict v) {
  switch (v) {
    case IntervalVerdict::kBelow: return "below";
    case IntervalVerdict::kInside: return "inside";
    case IntervalVerdict::kAbove: return "above";
  }
  return "?";
}

IntervalOutcome run_interval_query(group::QueryChannel& channel,
                                   std::span<const NodeId> participants,
                                   std::size_t t_lo, std::size_t t_hi,
                                   RngStream& rng,
                                   std::string_view algorithm,
                                   const EngineOptions& opts) {
  TCAST_CHECK(t_lo < t_hi);
  const auto* spec = find_algorithm(algorithm);
  TCAST_CHECK_MSG(spec != nullptr, "unknown tcast algorithm name");
  IntervalOutcome out;
  const QueryCount start = channel.queries_used();

  // Ask the lower bar first: most traffic is expected below it (the
  // bimodal false-alarm mode), so the cheap answer comes first.
  const auto low = spec->run(channel, participants, t_lo, rng, opts);
  if (!low.decision) {
    out.verdict = IntervalVerdict::kBelow;
  } else {
    const auto high = spec->run(channel, participants, t_hi, rng, opts);
    out.verdict = high.decision ? IntervalVerdict::kAbove
                                : IntervalVerdict::kInside;
  }
  out.queries = channel.queries_used() - start;
  return out;
}

}  // namespace tcast::core
