#include "core/csma_baseline.hpp"

namespace tcast::core {

CsmaBaselineOutcome run_csma_baseline(std::size_t n, std::size_t x,
                                      std::size_t t, RngStream& rng,
                                      const mac::CsmaFeedbackConfig& cfg) {
  CsmaBaselineOutcome out;
  out.detail = mac::run_csma_feedback(n, x, t, rng, cfg);
  out.outcome.decision = out.detail.decision;
  out.outcome.queries = out.detail.slots;
  out.outcome.rounds = 1;
  out.outcome.remaining_candidates = n - out.detail.successes;
  return out;
}

}  // namespace tcast::core
