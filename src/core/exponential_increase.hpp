// Algorithm 2: the Exponential Increase algorithm, plus the two variations
// Sec. IV-B reports experimenting with (kept as ablations; the paper found
// neither consistently better and dropped them from its figures).
#pragma once

#include "core/round_engine.hpp"

namespace tcast::core {

/// Plain doubling: 2 bins in round one, ×2 every round.
class ExponentialIncreasePolicy final : public BinCountPolicy {
 public:
  std::size_t initial_bins(std::span<const NodeId> candidates,
                           std::size_t threshold) override;
  std::size_t next_bins(const RoundStats& stats,
                        std::span<const NodeId> candidates) override;
};

/// Pause-and-continue variation: skip the doubling when a round eliminated
/// at least `pause_fraction` of its candidates.
class PauseAndContinuePolicy final : public BinCountPolicy {
 public:
  explicit PauseAndContinuePolicy(double pause_fraction = 0.5);
  std::size_t initial_bins(std::span<const NodeId> candidates,
                           std::size_t threshold) override;
  std::size_t next_bins(const RoundStats& stats,
                        std::span<const NodeId> candidates) override;

 private:
  double pause_fraction_;
};

/// Four-fold variation: quadruple instead of double when every bin tested
/// non-empty.
class FourFoldPolicy final : public BinCountPolicy {
 public:
  std::size_t initial_bins(std::span<const NodeId> candidates,
                           std::size_t threshold) override;
  std::size_t next_bins(const RoundStats& stats,
                        std::span<const NodeId> candidates) override;
};

ThresholdOutcome run_exponential_increase(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    std::size_t t, RngStream& rng, const EngineOptions& opts = {});

ThresholdOutcome run_pause_and_continue(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    std::size_t t, RngStream& rng, const EngineOptions& opts = {},
    double pause_fraction = 0.5);

ThresholdOutcome run_four_fold(group::QueryChannel& channel,
                               std::span<const NodeId> participants,
                               std::size_t t, RngStream& rng,
                               const EngineOptions& opts = {});

/// Lane-reuse variants: the same sessions on a caller-owned engine
/// (already rebind()-targeted), recycling its round workspaces across
/// trials. Outcome- and draw-identical to the channel overloads.
ThresholdOutcome run_exponential_increase(RoundEngine& engine,
                                          std::span<const NodeId> participants,
                                          std::size_t t);
ThresholdOutcome run_pause_and_continue(RoundEngine& engine,
                                        std::span<const NodeId> participants,
                                        std::size_t t,
                                        double pause_fraction = 0.5);
ThresholdOutcome run_four_fold(RoundEngine& engine,
                               std::span<const NodeId> participants,
                               std::size_t t);

}  // namespace tcast::core
