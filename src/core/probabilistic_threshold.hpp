// The probabilistic threshold test of Sec. VI.
//
// Assumes x follows a bimodal distribution (false alarm near μ1 vs true
// event near μ2). Repeats r single-bin sampled queries — each node enters
// the bin with probability 1/b — and declares the *high* mode when the
// non-empty count exceeds (m1 + m2)/2. O(1) queries, independent of n, x
// and t, at the price of a bounded error probability (Eq. 9/10).
#pragma once

#include <optional>

#include "analysis/chernoff.hpp"
#include "core/round_engine.hpp"

namespace tcast::core {

struct ProbabilisticThresholdOptions {
  double t_l = 0.0;         ///< low boundary (μ1 + 2σ1)
  double t_r = 0.0;         ///< high boundary (μ2 − 2σ2); must be > t_l
  std::size_t repeats = 1;  ///< r
  double b_override = 0.0;  ///< sampling parameter; 0 = gap-optimal b
};

struct ProbabilisticOutcome {
  bool high_mode = false;        ///< the decision: x ≥ t_r (vs x ≤ t_l)
  QueryCount queries = 0;        ///< == repeats
  std::size_t nonempty_seen = 0;
  analysis::SamplingPlan plan{};
};

ProbabilisticOutcome run_probabilistic_threshold(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    const ProbabilisticThresholdOptions& opts, RngStream& rng);

}  // namespace tcast::core
