#include "core/probabilistic_abns.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/abns.hpp"
#include "core/two_t_bins.hpp"
#include "group/binning.hpp"

namespace tcast::core {

ThresholdOutcome run_probabilistic_abns(group::QueryChannel& channel,
                                        std::span<const NodeId> participants,
                                        std::size_t t, RngStream& rng,
                                        ProbabilisticAbnsOptions popts,
                                        const EngineOptions& opts) {
  // Degenerate thresholds resolve without the hint. The threshold passes
  // through unchanged: the engine already short-circuits t = 0 to `true`
  // (clamping it to 1 would wrongly answer x ≥ 1).
  if (t == 0 || participants.size() < t || t < 2) {
    return run_two_t_bins(channel, participants, t, rng, opts);
  }

  const QueryCount queries_at_start = channel.queries_used();
  const double incl =
      popts.inclusion_prob > 0.0
          ? std::min(1.0, popts.inclusion_prob)
          : std::min(1.0, 2.0 / static_cast<double>(t));
  const auto hint_bin =
      group::BinAssignment::sampled(participants, incl, rng);
  const auto hint = channel.query_set(hint_bin.bin(0));

  ThresholdOutcome out;
  if (!hint.nonempty()) {
    // Likely x < t/2: ABNS seeded low.
    AbnsOptions abns{.p0 = std::max(1.0, static_cast<double>(t) / 4.0)};
    out = run_abns(channel, participants, t, rng, abns, opts);
  } else {
    // Likely x > t/2: 2tBins is already near-oracle there. A captured
    // identity from the hint is a confirmed positive the session keeps.
    std::size_t remaining_t = t;
    std::size_t confirmed = 0;
    std::vector<NodeId> rest(participants.begin(), participants.end());
    if (hint.kind == group::BinQueryResult::Kind::kCaptured) {
      std::erase(rest, hint.captured);
      confirmed = 1;
      remaining_t = t - 1;
    }
    out = run_two_t_bins(channel, rest, remaining_t, rng, opts);
    out.confirmed_positives += confirmed;
  }
  out.queries = channel.queries_used() - queries_at_start;
  return out;
}

}  // namespace tcast::core
