// The counting-algorithm portfolio: estimators of the positive count x
// itself, riding the same QueryChannel primitives as the threshold
// algorithms, plus the threshold-via-count adapter that makes every
// estimator queryable as a registry threshold algorithm.
//
// The paper's threshold decision is a special case of counting, and two
// companion papers give directly implementable one-hop algorithms on the
// collision primitives this repo already simulates:
//
//  * Newport–Zheng, "Approximate Neighbor Counting in Radio Networks":
//    a (1±ε)-approximation from geometric-probability probes. The no-CD
//    variant needs only the 1+ outcome — silence vs activity — which is
//    exactly this repo's backcast primitive. `nz-geom` implements it as a
//    rough doubling scan followed by an (ε, δ)-sized refinement at the
//    maximum-information inclusion probability.
//
//  * Casteigts–Métivier–Robson–Zemmari, "Counting in One-Hop Beeping
//    Networks": exact counting when the only signal is a beep. The 1+
//    outcome *is* a beep, so the adaptive interval-splitting exact counter
//    (core/aggregate) is that algorithm on this channel; `beep-exact`
//    registers it.
//
//  * `geom-scan` wraps the repo's original geometric-scan estimator
//    (core/count_estimation) so it, too, is a first-class portfolio
//    citizen under the conformance, statistical and chaos harnesses.
//
// Soundness contract (mirrors the PR 2 loss gate): an estimator may only
// set CountOutcome::exact — or claim confidence 1 — on a channel that does
// NOT declare lossy(); under loss a silent probe proves nothing, so every
// exactness claim there is a conformance violation
// (CheckedChannel::check_count_outcome refuses it). The threshold-via-count
// adapter never trusts an approximate estimate for the verdict: the answer
// always comes from an exact engine session (2tBins near the boundary,
// ABNS seeded with the estimate far from it), so adapter verdicts are
// deterministically correct on clean channels and stay one-sided under
// loss — which is what lets the adapters ride the existing differential,
// metamorphic and chaos harnesses unchanged.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/round_engine.hpp"

namespace tcast::core {

struct CountOptions {
  /// Target multiplicative accuracy of approximate estimators: the claim is
  /// P(|estimate − x| ≤ epsilon·x) ≥ 1 − delta for x ≥ 1.
  double epsilon = 0.35;
  double delta = 0.1;
  /// Engine options for the exact sessions the threshold-via-count adapter
  /// runs (estimators themselves never announce bins).
  EngineOptions engine;
};

struct CountOutcome {
  double estimate = 0.0;
  /// Claimed P(estimate within the (1±epsilon) band); 1.0 only when exact.
  double confidence = 0.0;
  /// Claimed multiplicative band; 0 when exact.
  double epsilon = 0.0;
  /// The count is proven, not estimated (whole-set silence proved x = 0, or
  /// the exact splitting counter ran). Never set on a lossy channel.
  bool exact = false;
  QueryCount queries = 0;
  std::size_t rounds = 0;  ///< estimation levels / splitting depth entered
  /// Estimation was cancelled (CountOptions::engine.cancel tripped) before
  /// the estimator finished; estimate/confidence are meaningless.
  bool cancelled = false;
  /// Identities decoded during estimation (2+ captures) — real positives
  /// the adapter credits against the threshold and excludes from its
  /// verification session, exactly like the prob-abns hint. May contain
  /// duplicates (the same node can be captured in two sampled probes);
  /// consumers dedupe.
  std::vector<NodeId> confirmed;
};

struct CountAlgorithmSpec {
  std::string name;
  std::string description;
  /// Produces exact counts on lossless channels (epsilon-free).
  bool exact = false;
  std::function<CountOutcome(group::QueryChannel&, std::span<const NodeId>,
                             RngStream&, const CountOptions&)>
      run;
};

/// All registered counting estimators, in presentation order.
const std::vector<CountAlgorithmSpec>& counting_registry();

/// Lookup by name; nullptr when unknown.
const CountAlgorithmSpec* find_counting_algorithm(std::string_view name);

/// Newport–Zheng-style geometric-phase approximate counting on the 1+
/// outcome. Rough doubling scan (inclusion q = 2^-i until probes fall
/// silent), then refinement at q* ≈ ln2/x̂ — the operating point where
/// P(silence) ≈ 1/2 carries maximum information — with the repeat count
/// sized from (epsilon, delta). x = 0 is proven exactly in one query on
/// lossless channels.
CountOutcome run_newport_zheng_count(group::QueryChannel& channel,
                                     std::span<const NodeId> participants,
                                     RngStream& rng,
                                     const CountOptions& opts = {});

/// The repo's original geometric-scan estimator (core/count_estimation)
/// as a portfolio citizen.
CountOutcome run_geom_scan_count(group::QueryChannel& channel,
                                 std::span<const NodeId> participants,
                                 RngStream& rng,
                                 const CountOptions& opts = {});

/// Casteigts-style exact count with beeps: the adaptive interval-splitting
/// counter of core/aggregate on the 1+ (beep) outcome; 2+ captures prune
/// subtrees. Exact on lossless channels; under loss the count is a lower
/// bound (silence may lie) and `exact` is not claimed.
CountOutcome run_beep_exact_count(group::QueryChannel& channel,
                                  std::span<const NodeId> participants,
                                  RngStream& rng,
                                  const CountOptions& opts = {});

/// The threshold-via-count adapter: answers "x ≥ t?" by running the named
/// estimator, then — unless the count is proven exact on a lossless
/// channel — an exact engine session whose shape the estimate picks:
/// 2tBins when t lands inside the estimate's (widened) uncertainty band,
/// ABNS seeded with the estimate when x̂ is far below t. Captured
/// identities from the estimation phase are credited and excluded, like
/// the prob-abns hint. Deterministically correct on lossless channels;
/// one-sided (no false "yes") under loss.
ThresholdOutcome run_threshold_via_count(group::QueryChannel& channel,
                                         std::span<const NodeId> participants,
                                         std::size_t t, RngStream& rng,
                                         std::string_view estimator,
                                         const EngineOptions& opts = {});

/// Worst-case query ceilings for the conformance bound monitor.
/// Estimation-phase ceiling of the sampling estimators (geom-scan and
/// nz-geom) at default CountOptions: anchor + levels·probes + refinement.
double sampling_estimator_query_bound(std::size_t n);
/// Ceiling of the beep-exact splitting counter: every query discards,
/// counts, captures, or splits; generous closed form 2n·(log2(n)+2) + 8
/// (validated against exhaustive worst cases in tests/core/counting_test).
double beep_exact_query_bound(std::size_t n);

}  // namespace tcast::core
