// The shared round engine behind every exact tcast algorithm.
//
// Algorithms 1 (2tBins), 2 (Exponential Increase), 3 (ABNS) and the oracle
// baseline all share one skeleton — per round: pick a bin count, partition
// the surviving candidates, query bins with early termination, dispose the
// nodes of silent bins — and differ only in how the bin count is chosen.
// That choice is the BinCountPolicy strategy; the engine owns everything
// else, including the 2+ model's extra bookkeeping:
//
//   * a captured identity is a *confirmed* positive: removed from the
//     candidate set and credited against the threshold for the rest of the
//     session ("we can exclude this node from the next round");
//   * an activity-without-capture bin certifies ≥2 positives ("we can
//     conclude that at least two nodes replied") — configurable, since the
//     inference is only sound when a lone reply always decodes.
//
// Termination invariant per query:
//   confirmed + Σ(per-bin lower bounds this round) ≥ t  ⇒  answer true
//   confirmed + |candidates|                       < t  ⇒  answer false
// which reduces exactly to Alg. 1 lines 11/14 in the 1+ model.
#pragma once

#include <atomic>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "group/query_channel.hpp"

namespace tcast::core {

/// Within-round query order (DESIGN.md decision #2).
enum class BinOrdering {
  /// Paper-simulation accounting: bins are ordered so non-empty ones come
  /// first and "empty bins never occupy a time slot" once early termination
  /// fires. Requires an oracle-capable channel; falls back to kInOrder.
  kNonEmptyFirst,
  /// Realistic: bins queried in index order (the testbed behaviour).
  kInOrder,
};

enum class BinningScheme {
  kRandomEqual,  ///< Alg. 1 line 4 (this paper)
  kContiguous,   ///< deterministic variant of [4] (ablation)
};

/// How the engine treats silent bins on a channel that declares loss
/// (QueryChannel::lossy()). On a lossless channel silence is proof and no
/// policy ever re-queries — RetryPolicy is bit-exact with the historical
/// engine there, whatever its kind.
struct RetryPolicy {
  enum class Kind : std::uint8_t {
    kNone,      ///< accept silence at face value (the paper's engine)
    kFixed,     ///< re-query a silent bin up to `retries` times
    kAdaptive,  ///< re-query until the estimated residual false-empty
                ///< probability drops under `target_residual`
  };

  Kind kind = Kind::kNone;
  /// kFixed: extra attempts per silent bin before the disposal commits.
  std::size_t retries = 2;
  /// kAdaptive: accept a disposal once p̂^(attempts) ≤ target_residual,
  /// where p̂ is the running loss-rate estimate from contradicted empties.
  double target_residual = 1e-3;
  /// kAdaptive: hard cap on extra attempts per silent bin.
  std::size_t max_retries = 8;

  static RetryPolicy none() { return {}; }
  static RetryPolicy fixed(std::size_t r) {
    return {Kind::kFixed, r, 1e-3, 8};
  }
  static RetryPolicy adaptive(double target, std::size_t cap = 8) {
    return {Kind::kAdaptive, 2, target, cap};
  }

  /// Parses "none" | "fixed:R" | "adaptive:TARGET[:CAP]".
  static std::optional<RetryPolicy> parse(std::string_view text);
  std::string spec() const;

  bool operator==(const RetryPolicy&) const = default;
};

/// Cooperative cancellation, polled by the engine at query granularity.
/// The service tier arms one per query with a wall-clock deadline (and a
/// shard-kill flag); tests use FlagCancelToken to trip it deterministically
/// after an exact number of queries. A cancelled run never fabricates a
/// verdict: ThresholdOutcome::cancelled is set and `decision` is
/// meaningless (callers map it to a typed kDeadlineExceeded/kShardDown).
class CancelToken {
 public:
  virtual ~CancelToken() = default;
  virtual bool cancelled() const = 0;
};

/// Manually-tripped token (thread-safe); the deterministic test vehicle and
/// the shard-kill signal.
class FlagCancelToken final : public CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_release); }
  void reset() { flag_.store(false, std::memory_order_release); }
  bool cancelled() const override {
    return flag_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

struct EngineOptions {
  BinOrdering ordering = BinOrdering::kNonEmptyFirst;
  BinningScheme scheme = BinningScheme::kRandomEqual;
  /// 2+ model: count an undecoded-activity bin as ≥2 positives. Sound when
  /// a lone reply always decodes (exact tier; lossless packet tier). The
  /// engine auto-disables the inference on channels that declare lossy() —
  /// a lone reply that fails to decode reads as activity there, and the
  /// ≥2 credit would manufacture positives (false "yes").
  bool two_plus_activity_counts_two = true;
  /// Loss robustness: what to do before committing a silent-bin disposal on
  /// a lossy channel (no effect on lossless channels).
  RetryPolicy retry;
  /// TEST-ONLY: keep the "activity ⇒ ≥2" credit even on lossy channels,
  /// i.e. disable the soundness gate above. This deliberately re-opens the
  /// false-"yes" hole the gate closes; the chaos engine's shrinker tests
  /// use it as the known-broken engine variant whose violations they
  /// minimize. Never set in production configurations.
  bool unsafe_counts_two_despite_loss = false;
  /// Safety valve; no exact algorithm comes near this (tests assert so).
  std::size_t max_rounds = 10'000;
  /// Cooperative cancellation (deadlines, shard kill). Polled before every
  /// query the engine issues; nullptr = never cancelled. Borrowed — must
  /// outlive the run.
  const CancelToken* cancel = nullptr;
};

struct ThresholdOutcome {
  bool decision = false;            ///< the answer to "x ≥ t?"
  QueryCount queries = 0;           ///< RCD queries spent (the paper's cost)
  std::size_t rounds = 0;           ///< rounds entered
  std::size_t confirmed_positives = 0;  ///< identities captured (2+ only)
  std::size_t remaining_candidates = 0; ///< undecided nodes at termination
  /// Re-query attempts spent on silent bins (RetryPolicy; part of
  /// `queries`, broken out so sweeps can report the robustness overhead).
  std::size_t retries = 0;
  /// Silent bins contradicted by a re-query — each is direct evidence of a
  /// lost reply the unguarded engine would have turned into a disposal.
  std::size_t faults_seen = 0;
  /// The run was cancelled (EngineOptions::cancel tripped) before reaching a
  /// verdict; `decision` is meaningless and must not be trusted. Queries,
  /// rounds and confirmed counts reflect work done up to the cancellation.
  bool cancelled = false;
};

/// What a policy sees after each completed (not early-terminated) round.
struct RoundStats {
  std::size_t round_index = 0;       ///< 0-based
  std::size_t bins = 0;              ///< bins in this round's assignment
  std::size_t bins_queried = 0;
  std::size_t empty_bins = 0;        ///< e_real of Alg. 3
  std::size_t nonempty_bins = 0;
  std::size_t captured = 0;          ///< identities captured this round
  std::size_t candidates_before = 0;
  std::size_t candidates_after = 0;
  std::size_t remaining_threshold = 0;  ///< t − confirmed so far
};

/// Strategy: how many bins to use each round.
class BinCountPolicy {
 public:
  virtual ~BinCountPolicy() = default;

  virtual std::size_t initial_bins(std::span<const NodeId> candidates,
                                   std::size_t threshold) = 0;

  virtual std::size_t next_bins(const RoundStats& stats,
                                std::span<const NodeId> candidates) = 0;
};

class RoundEngine {
 public:
  /// `rng` drives the random binning and must outlive run().
  RoundEngine(group::QueryChannel& channel, RngStream& rng,
              EngineOptions opts = {});

  /// Re-targets this engine at a new (channel, rng, options) triple while
  /// keeping the allocated round workspaces — the Monte-Carlo lane reuse
  /// behind the sweep engine's per-trial loop. run() fully re-initialises
  /// every workspace, so a rebound engine is outcome- and draw-identical
  /// to a freshly constructed one.
  void rebind(group::QueryChannel& channel, RngStream& rng,
              const EngineOptions& opts) {
    channel_ = &channel;
    rng_ = &rng;
    opts_ = opts;
  }

  /// Decides whether ≥ `threshold` of `participants` are positive.
  ThresholdOutcome run(std::span<const NodeId> participants,
                       std::size_t threshold, BinCountPolicy& policy);

  /// The channel this engine currently targets (policies that need oracle
  /// access, e.g. the oracle baseline, reach it through here).
  group::QueryChannel& channel() const { return *channel_; }

 private:
  std::size_t clamp_bins(std::size_t b, std::size_t candidates) const;
  void make_assignment(std::span<NodeId> candidates, std::size_t bins,
                       group::BinAssignment& out);
  void query_order(const group::BinAssignment& a,
                   std::vector<std::size_t>& order) const;

  group::QueryChannel* channel_;
  RngStream* rng_;
  EngineOptions opts_;
  /// Per-round workspaces, reused across rounds and runs so the steady-state
  /// round loop allocates nothing.
  group::BinAssignment assignment_;
  NodeSet alive_;
  std::vector<NodeId> candidates_;
  std::vector<std::size_t> order_;
  mutable std::vector<char> nonempty_;
};

}  // namespace tcast::core
