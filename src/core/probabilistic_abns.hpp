// Probabilistic ABNS (Sec. V-D).
//
// One sampling query sharpens the initial estimate: build a single bin by
// including each candidate with probability 2/t and query it.
//   * empty      → deduce x < t/2 and run ABNS with p0 = t/4
//                  (where ABNS clearly beats 2tBins, Fig. 5);
//   * non-empty  → deduce x > t/2 and simply run 2tBins
//                  (which is near-oracle in that regime).
// The hint costs exactly one query and needs no bimodality assumption.
#pragma once

#include "core/round_engine.hpp"

namespace tcast::core {

struct ProbabilisticAbnsOptions {
  /// Inclusion probability for the hint bin; the paper's 2/t when 0.
  double inclusion_prob = 0.0;
};

ThresholdOutcome run_probabilistic_abns(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    std::size_t t, RngStream& rng, ProbabilisticAbnsOptions popts = {},
    const EngineOptions& opts = {});

}  // namespace tcast::core
