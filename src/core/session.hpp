// ThresholdSession — the high-level public entry point of the library.
//
// A session binds a channel (exact or packet tier), the participant set and
// the RNG, and exposes the paper's primitives as one-liners:
//
//   tcast::core::ThresholdSession session(channel, rng);
//   auto out = session.tcast(/*t=*/8);                    // 2tBins default
//   auto out2 = session.tcast(8, "prob-abns");            // by name
//   auto hint = session.probabilistic(t_l, t_r, repeats); // Sec. VI test
#pragma once

#include <span>
#include <string_view>

#include "core/probabilistic_threshold.hpp"
#include "core/registry.hpp"

namespace tcast::core {

class ThresholdSession {
 public:
  /// Participants default to every node the channel knows about when the
  /// caller passes an empty span at tcast() time.
  ThresholdSession(group::QueryChannel& channel,
                   std::span<const NodeId> participants, RngStream& rng,
                   EngineOptions opts = {});

  /// Answers "do at least t participants satisfy the predicate?" using the
  /// named algorithm (default: 2tBins). Aborts on unknown names.
  ThresholdOutcome tcast(std::size_t t, std::string_view algorithm = "2tbins");

  /// The Sec.-VI constant-query bimodal test.
  ProbabilisticOutcome probabilistic(double t_l, double t_r,
                                     std::size_t repeats);

  /// Cumulative query count across all calls on this session.
  QueryCount total_queries() const { return channel_->queries_used(); }

  const std::vector<NodeId>& participants() const { return participants_; }

 private:
  group::QueryChannel* channel_;
  std::vector<NodeId> participants_;
  RngStream* rng_;
  EngineOptions opts_;
};

}  // namespace tcast::core
