#include "core/aggregate.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "core/registry.hpp"

namespace tcast::core {

ExactCountOutcome run_exact_count(group::QueryChannel& channel,
                                  std::span<const NodeId> participants,
                                  RngStream& rng) {
  ExactCountOutcome out;
  const QueryCount start = channel.queries_used();
  if (participants.empty()) return out;

  // Shuffle once so contiguous segments are uniform random subsets.
  std::vector<NodeId> pool(participants.begin(), participants.end());
  rng.shuffle(pool);

  // Explicit stack of [lo, hi) segments of `pool`.
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.emplace_back(0, pool.size());
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    TCAST_DCHECK(lo < hi);
    const std::span<const NodeId> segment(pool.data() + lo, hi - lo);
    const auto result = channel.query_set(segment);
    switch (result.kind) {
      case group::BinQueryResult::Kind::kEmpty:
        break;  // whole subtree discarded
      case group::BinQueryResult::Kind::kCaptured: {
        // One positive identified; the rest of the segment is unresolved
        // unless it was a singleton.
        ++out.count;
        ++out.identified;
        out.identified_ids.push_back(result.captured);
        if (hi - lo > 1) {
          // Re-scan the segment minus the captured node: compact it to the
          // front of the range and recurse on the remainder.
          auto it = std::find(pool.begin() + static_cast<std::ptrdiff_t>(lo),
                              pool.begin() + static_cast<std::ptrdiff_t>(hi),
                              result.captured);
          TCAST_CHECK(it !=
                      pool.begin() + static_cast<std::ptrdiff_t>(hi));
          std::swap(*it, pool[hi - 1]);
          stack.emplace_back(lo, hi - 1);
        }
        break;
      }
      case group::BinQueryResult::Kind::kActivity: {
        if (hi - lo == 1) {
          ++out.count;  // a singleton's activity IS the answer
          break;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        stack.emplace_back(lo, mid);
        stack.emplace_back(mid, hi);
        break;
      }
    }
  }
  out.queries = channel.queries_used() - start;
  return out;
}

SymmetricOutcome run_symmetric_query(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    const std::function<bool(std::size_t)>& f, RngStream& rng,
    std::string_view algorithm, const EngineOptions& opts) {
  TCAST_CHECK(f != nullptr);
  const auto* spec = find_algorithm(algorithm);
  TCAST_CHECK_MSG(spec != nullptr, "unknown tcast algorithm name");

  SymmetricOutcome out;
  const QueryCount start = channel.queries_used();
  std::size_t lo = 0;
  std::size_t hi = participants.size();

  const auto constant_on_range = [&]() -> std::optional<bool> {
    const bool first = f(lo);
    for (std::size_t v = lo + 1; v <= hi; ++v)
      if (f(v) != first) return std::nullopt;
    return first;
  };

  for (;;) {
    if (const auto value = constant_on_range()) {
      out.value = *value;
      break;
    }
    // f still varies on [lo, hi]: bisect with a threshold session.
    const std::size_t mid = lo + (hi - lo + 1) / 2;  // lo < mid ≤ hi
    ++out.sessions;
    const auto decision =
        spec->run(channel, participants, mid, rng, opts).decision;
    if (decision) {
      lo = mid;  // x ≥ mid
    } else {
      hi = mid - 1;  // x < mid
    }
    TCAST_CHECK(lo <= hi);
  }
  out.x_lo = lo;
  out.x_hi = hi;
  out.queries = channel.queries_used() - start;
  return out;
}

}  // namespace tcast::core
