// Beyond thresholds: the companion theory ([4], "k+ decision trees",
// Aspnes et al.) studies computing arbitrary aggregate functions of the
// nodes' bits from 1+/2+ queries. The paper instantiates only the
// threshold function; this module provides the two natural generalisations
// a deployment actually reaches for:
//
//  * run_exact_count — determines x exactly by adaptive binary splitting
//    (classic group testing): query a segment, discard it when silent,
//    split otherwise, count singletons. Cost O(x · log(n/x)) queries; in
//    the 2+ model captured identities shortcut whole subtrees.
//
//  * run_symmetric_query — evaluates ANY symmetric predicate f(x) by
//    maintaining bounds lo ≤ x ≤ hi and bisecting with exact threshold
//    sessions until f is constant on [lo, hi]. At most ⌈log2 n⌉ sessions;
//    for the threshold function it degenerates to a single session.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "core/round_engine.hpp"

namespace tcast::core {

struct ExactCountOutcome {
  std::size_t count = 0;
  QueryCount queries = 0;
  std::size_t identified = 0;  ///< positives pinned by 2+ captures
  std::vector<NodeId> identified_ids;  ///< the captured identities themselves
};

/// Determines the exact number of positives among `participants`.
ExactCountOutcome run_exact_count(group::QueryChannel& channel,
                                  std::span<const NodeId> participants,
                                  RngStream& rng);

struct SymmetricOutcome {
  bool value = false;       ///< f(x)
  std::size_t x_lo = 0;     ///< final bounds: x ∈ [x_lo, x_hi]
  std::size_t x_hi = 0;
  QueryCount queries = 0;
  std::size_t sessions = 0;  ///< threshold sessions run
};

/// Evaluates the symmetric predicate `f` of the positive count.
/// `f` must be total on [0, participants.size()].
SymmetricOutcome run_symmetric_query(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    const std::function<bool(std::size_t)>& f, RngStream& rng,
    std::string_view algorithm = "2tbins", const EngineOptions& opts = {});

}  // namespace tcast::core
