#include "core/abns.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/estimators.hpp"
#include "common/check.hpp"

namespace tcast::core {

AbnsPolicy::AbnsPolicy(AbnsOptions opts) : p_(opts.p0) {
  TCAST_CHECK(opts.p0 >= 0.0);
}

std::size_t AbnsPolicy::bins_from_estimate(double p) {
  // b_i = p_i + 1 (Alg. 3 line 6); the engine clamps to the candidate count.
  return static_cast<std::size_t>(std::llround(std::max(0.0, p))) + 1;
}

std::size_t AbnsPolicy::initial_bins(std::span<const NodeId> candidates,
                                     std::size_t threshold) {
  (void)candidates;
  if (p_ <= 0.0) p_ = 2.0 * static_cast<double>(threshold);  // paper default
  return bins_from_estimate(p_);
}

std::size_t AbnsPolicy::next_bins(const RoundStats& stats,
                                  std::span<const NodeId> candidates) {
  (void)candidates;
  // Eq. 6 with the all-full guard: zero empty bins means p was a (possibly
  // gross) underestimate — grow it multiplicatively (DESIGN.md decision #4).
  const double fallback =
      std::max(2.0 * static_cast<double>(stats.bins), 2.0 * std::max(p_, 1.0));
  p_ = analysis::estimate_p(stats.empty_bins, stats.bins, fallback);
  // The estimate tracks survivors: captured positives are no longer among
  // the candidates, so they leave the estimate too.
  p_ = std::max(0.0, p_ - static_cast<double>(stats.captured));
  return bins_from_estimate(p_);
}

ThresholdOutcome run_abns(group::QueryChannel& channel,
                          std::span<const NodeId> participants, std::size_t t,
                          RngStream& rng, AbnsOptions abns,
                          const EngineOptions& opts) {
  RoundEngine engine(channel, rng, opts);
  return run_abns(engine, participants, t, abns);
}

ThresholdOutcome run_abns(RoundEngine& engine,
                          std::span<const NodeId> participants, std::size_t t,
                          AbnsOptions abns) {
  if (abns.p0 <= 0.0) abns.p0 = 2.0 * static_cast<double>(t);
  AbnsPolicy policy(abns);
  return engine.run(participants, t, policy);
}

}  // namespace tcast::core
