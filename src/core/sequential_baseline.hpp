// Sequential-ordering baseline adapter (see mac/sequential.hpp); slots are
// reported in the `queries` field.
#pragma once

#include "core/round_engine.hpp"
#include "mac/sequential.hpp"

namespace tcast::core {

struct SequentialBaselineOutcome {
  ThresholdOutcome outcome;
  mac::SequentialResult detail;
};

SequentialBaselineOutcome run_sequential_baseline(std::size_t n,
                                                  std::size_t x,
                                                  std::size_t t,
                                                  RngStream& rng);

}  // namespace tcast::core
