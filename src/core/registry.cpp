#include "core/registry.hpp"

#include "core/abns.hpp"
#include "core/counting.hpp"
#include "core/exponential_increase.hpp"
#include "core/oracle.hpp"
#include "core/probabilistic_abns.hpp"
#include "core/two_t_bins.hpp"

namespace tcast::core {

const std::vector<AlgorithmSpec>& algorithm_registry() {
  static const std::vector<AlgorithmSpec> registry = [] {
    std::vector<AlgorithmSpec> specs;
    specs.push_back(
        {"2tbins", "Algorithm 1: 2t equal-sized random bins per round", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_two_t_bins(ch, nodes, t, rng, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) { return run_two_t_bins(engine, nodes, t); }});
    specs.push_back(
        {"expinc", "Algorithm 2: start at 2 bins, double every round", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_exponential_increase(ch, nodes, t, rng, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) {
           return run_exponential_increase(engine, nodes, t);
         }});
    specs.push_back(
        {"expinc-pause",
         "Sec. IV-B variation: pause doubling after productive rounds", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_pause_and_continue(ch, nodes, t, rng, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) {
           return run_pause_and_continue(engine, nodes, t);
         }});
    specs.push_back(
        {"expinc-fourfold",
         "Sec. IV-B variation: quadruple after all-non-empty rounds", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_four_fold(ch, nodes, t, rng, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) { return run_four_fold(engine, nodes, t); }});
    specs.push_back(
        {"abns:t", "Algorithm 3: ABNS seeded with p0 = t", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_abns(ch, nodes, t, rng,
                           AbnsOptions{static_cast<double>(t)}, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) {
           return run_abns(engine, nodes, t,
                           AbnsOptions{static_cast<double>(t)});
         }});
    specs.push_back(
        {"abns:2t", "Algorithm 3: ABNS seeded with p0 = 2t", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_abns(ch, nodes, t, rng,
                           AbnsOptions{2.0 * static_cast<double>(t)}, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) {
           return run_abns(engine, nodes, t,
                           AbnsOptions{2.0 * static_cast<double>(t)});
         }});
    specs.push_back(
        {"prob-abns",
         "Sec. V-D: one sampling query, then ABNS(t/4) or 2tBins", false,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_probabilistic_abns(ch, nodes, t, rng, {}, opts);
         },
         // No single-engine entry point: the sampling query runs outside
         // the engine session, so lanes fall back to the channel overload.
         {}});
    // The counting portfolio, adapted to threshold queries: estimate (or
    // count exactly), then verify with an exact engine session whose shape
    // the estimate picks. One registry entry per counting estimator, so the
    // conformance, fault and chaos harnesses audit all of them for free.
    for (const auto& counting : counting_registry()) {
      specs.push_back(
          {"count:" + counting.name,
           "threshold-via-count adapter over " + counting.name, false,
           [name = counting.name](group::QueryChannel& ch,
                                  std::span<const NodeId> nodes,
                                  std::size_t t, RngStream& rng,
                                  const EngineOptions& opts) {
             return run_threshold_via_count(ch, nodes, t, rng, name, opts);
           },
           // Estimate + verify are two separate engine sessions; no
           // single-engine entry point.
           {}});
    }
    specs.push_back(
        {"oracle", "Sec. V-C lower-bound reference (needs ground truth)",
         true,
         [](group::QueryChannel& ch, std::span<const NodeId> nodes,
            std::size_t t, RngStream& rng, const EngineOptions& opts) {
           return run_oracle(ch, nodes, t, rng, opts);
         },
         [](RoundEngine& engine, std::span<const NodeId> nodes,
            std::size_t t) { return run_oracle(engine, nodes, t); }});
    return specs;
  }();
  return registry;
}

const AlgorithmSpec* find_algorithm(std::string_view name) {
  for (const auto& spec : algorithm_registry())
    if (spec.name == name) return &spec;
  return nullptr;
}

}  // namespace tcast::core
