#include "core/exponential_increase.hpp"

#include "common/check.hpp"

namespace tcast::core {

std::size_t ExponentialIncreasePolicy::initial_bins(
    std::span<const NodeId> candidates, std::size_t threshold) {
  (void)candidates;
  (void)threshold;
  return 2;
}

std::size_t ExponentialIncreasePolicy::next_bins(
    const RoundStats& stats, std::span<const NodeId> candidates) {
  (void)candidates;
  return stats.bins * 2;
}

PauseAndContinuePolicy::PauseAndContinuePolicy(double pause_fraction)
    : pause_fraction_(pause_fraction) {
  TCAST_CHECK(pause_fraction >= 0.0 && pause_fraction <= 1.0);
}

std::size_t PauseAndContinuePolicy::initial_bins(
    std::span<const NodeId> candidates, std::size_t threshold) {
  (void)candidates;
  (void)threshold;
  return 2;
}

std::size_t PauseAndContinuePolicy::next_bins(
    const RoundStats& stats, std::span<const NodeId> candidates) {
  (void)candidates;
  const auto before = static_cast<double>(stats.candidates_before);
  const auto after = static_cast<double>(stats.candidates_after);
  const double eliminated_frac = before > 0.0 ? (before - after) / before : 0.0;
  if (eliminated_frac >= pause_fraction_) return stats.bins;  // pause
  return stats.bins * 2;                                      // continue
}

std::size_t FourFoldPolicy::initial_bins(std::span<const NodeId> candidates,
                                         std::size_t threshold) {
  (void)candidates;
  (void)threshold;
  return 2;
}

std::size_t FourFoldPolicy::next_bins(const RoundStats& stats,
                                      std::span<const NodeId> candidates) {
  (void)candidates;
  if (stats.empty_bins == 0) return stats.bins * 4;
  return stats.bins * 2;
}

ThresholdOutcome run_exponential_increase(
    group::QueryChannel& channel, std::span<const NodeId> participants,
    std::size_t t, RngStream& rng, const EngineOptions& opts) {
  RoundEngine engine(channel, rng, opts);
  return run_exponential_increase(engine, participants, t);
}

ThresholdOutcome run_pause_and_continue(group::QueryChannel& channel,
                                        std::span<const NodeId> participants,
                                        std::size_t t, RngStream& rng,
                                        const EngineOptions& opts,
                                        double pause_fraction) {
  RoundEngine engine(channel, rng, opts);
  return run_pause_and_continue(engine, participants, t, pause_fraction);
}

ThresholdOutcome run_four_fold(group::QueryChannel& channel,
                               std::span<const NodeId> participants,
                               std::size_t t, RngStream& rng,
                               const EngineOptions& opts) {
  RoundEngine engine(channel, rng, opts);
  return run_four_fold(engine, participants, t);
}

ThresholdOutcome run_exponential_increase(RoundEngine& engine,
                                          std::span<const NodeId> participants,
                                          std::size_t t) {
  ExponentialIncreasePolicy policy;
  return engine.run(participants, t, policy);
}

ThresholdOutcome run_pause_and_continue(RoundEngine& engine,
                                        std::span<const NodeId> participants,
                                        std::size_t t, double pause_fraction) {
  PauseAndContinuePolicy policy(pause_fraction);
  return engine.run(participants, t, policy);
}

ThresholdOutcome run_four_fold(RoundEngine& engine,
                               std::span<const NodeId> participants,
                               std::size_t t) {
  FourFoldPolicy policy;
  return engine.run(participants, t, policy);
}

}  // namespace tcast::core
