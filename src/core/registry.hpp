// Named registry of the exact threshold-querying algorithms.
//
// Lets benches, examples and tests enumerate or look up algorithms by the
// names used throughout the paper ("2tbins", "expinc", "abns:t", ...)
// without hard-wiring each call site.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/round_engine.hpp"

namespace tcast::core {

struct AlgorithmSpec {
  std::string name;
  std::string description;
  /// True for baselines that need ground truth (oracle).
  bool needs_oracle = false;
  std::function<ThresholdOutcome(group::QueryChannel&,
                                 std::span<const NodeId>, std::size_t,
                                 RngStream&, const EngineOptions&)>
      run;
  /// Optional engine-reuse entry point: runs the algorithm on a
  /// caller-owned, already rebind()-targeted RoundEngine so tight trial
  /// loops (sweep lanes) can recycle round workspaces instead of paying a
  /// fresh engine construction per trial. Draw- and outcome-identical to
  /// `run`. Null for algorithms that don't route through a single engine
  /// session (prob-abns, count:*).
  std::function<ThresholdOutcome(RoundEngine&, std::span<const NodeId>,
                                 std::size_t)>
      run_with_engine;
};

/// All registered algorithms, in presentation order.
const std::vector<AlgorithmSpec>& algorithm_registry();

/// Lookup by name; nullptr when unknown.
const AlgorithmSpec* find_algorithm(std::string_view name);

}  // namespace tcast::core
