// Extensions built on the same sampled-bin primitive as Sec. V-D / VI:
//
//  * estimate_positive_count — an adaptive estimator of x itself (not just
//    x ≥ t). The paper uses one sampled query to coarsely bucket x for the
//    ABNS seed; iterating the idea at geometric inclusion probabilities and
//    inverting P(non-empty) = 1 − (1 − q)^x yields a multiplicative point
//    estimate in O(log n + r) queries — the data-streams "sampling at the
//    right scale" trick the paper cites ([18]).
//
//  * run_interval_query — answers which side of an interval [t_lo, t_hi)
//    the positive count falls on, by composing two exact threshold queries.
//    This is the exact-query analogue of the Sec.-VI bimodal test (and what
//    an intrusion-detection application actually wants: "false alarm, real
//    event, or in between — investigate").
#pragma once

#include <string_view>
#include <vector>

#include "core/round_engine.hpp"

namespace tcast::core {

struct CountEstimateOptions {
  std::size_t probe_repeats = 6;    ///< queries per level while scanning
  std::size_t refine_repeats = 30;  ///< queries at the accepted level
  /// Accept a level when the observed non-empty fraction drops to
  /// target_high or below — the informative regime of the inversion (rates
  /// near 1 invert with exploding variance; 0.65 tuned empirically to
  /// ≈ ±23% mean relative error at the defaults).
  double target_low = 0.25;
  double target_high = 0.65;
};

struct CountEstimate {
  double estimate = 0.0;   ///< point estimate of x
  bool exact = false;      ///< true when x = 0 was proven (whole-set silent)
  QueryCount queries = 0;
  double inclusion_used = 1.0;  ///< q of the refining level
  std::size_t nonempty = 0;     ///< non-empty outcomes at that level
  std::size_t repeats = 0;      ///< refining repeats actually made
  /// Identities decoded by 2+ captures during probing — real positives a
  /// caller may credit. May contain duplicates; consumers dedupe.
  std::vector<NodeId> confirmed;
};

/// Estimates the number of positive nodes among `participants`.
/// Multiplicative accuracy improves with refine_repeats (≈ ±30% at the
/// defaults); x = 0 is detected exactly in one query.
CountEstimate estimate_positive_count(group::QueryChannel& channel,
                                      std::span<const NodeId> participants,
                                      RngStream& rng,
                                      const CountEstimateOptions& opts = {});

enum class IntervalVerdict { kBelow, kInside, kAbove };

const char* to_string(IntervalVerdict v);

struct IntervalOutcome {
  IntervalVerdict verdict = IntervalVerdict::kBelow;
  QueryCount queries = 0;
};

/// Decides whether x < t_lo, t_lo ≤ x < t_hi, or x ≥ t_hi, using two exact
/// threshold sessions of the named registry algorithm (default 2tBins).
/// Requires t_lo < t_hi.
IntervalOutcome run_interval_query(group::QueryChannel& channel,
                                   std::span<const NodeId> participants,
                                   std::size_t t_lo, std::size_t t_hi,
                                   RngStream& rng,
                                   std::string_view algorithm = "2tbins",
                                   const EngineOptions& opts = {});

}  // namespace tcast::core
