#include "core/oracle.hpp"

#include <cmath>

#include "analysis/bounds.hpp"
#include "common/check.hpp"

namespace tcast::core {

std::size_t OraclePolicy::pick(std::span<const NodeId> candidates,
                               std::size_t threshold) const {
  const auto x = channel_->oracle_positive_count(candidates);
  TCAST_CHECK_MSG(x.has_value(),
                  "oracle policy needs an oracle-capable channel");
  const double b = analysis::oracle_bin_count(candidates.size(),
                                              std::max<std::size_t>(1, threshold),
                                              *x);
  return static_cast<std::size_t>(std::llround(b));
}

std::size_t OraclePolicy::initial_bins(std::span<const NodeId> candidates,
                                       std::size_t threshold) {
  return pick(candidates, threshold);
}

std::size_t OraclePolicy::next_bins(const RoundStats& stats,
                                    std::span<const NodeId> candidates) {
  return pick(candidates, stats.remaining_threshold);
}

ThresholdOutcome run_oracle(group::QueryChannel& channel,
                            std::span<const NodeId> participants,
                            std::size_t t, RngStream& rng,
                            const EngineOptions& opts) {
  RoundEngine engine(channel, rng, opts);
  return run_oracle(engine, participants, t);
}

ThresholdOutcome run_oracle(RoundEngine& engine,
                            std::span<const NodeId> participants,
                            std::size_t t) {
  OraclePolicy policy(engine.channel());
  return engine.run(participants, t, policy);
}

}  // namespace tcast::core
